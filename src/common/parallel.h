// Shared CPU parallel runtime.
//
// A persistent thread pool behind ATen-style parallel_for / parallel_reduce
// primitives. Every multi-threaded hot path in the library (GEMM, the
// convolution executors, the TDC core kernel interpreter, autograd batching)
// funnels through this header instead of carrying its own OpenMP pragmas, so
// thread count, grain-size policy and nested-parallelism behavior are
// consistent everywhere.
//
// Thread count resolution order:
//   1. set_num_threads(n) — explicit programmatic override;
//   2. TDC_NUM_THREADS    — environment override, read once at first use;
//   3. std::thread::hardware_concurrency().
//
// Chunks are split statically; a call from inside a parallel region runs
// serially (no nested fan-out). Concurrent *top-level* callers are served by
// task arenas (TBB-style, the ATen Parallel.h idiom): the persistent pool
// admits up to arena_config().inter_op simultaneous fork/join regions, each
// with a bounded share of the workers (intra_op - 1 assisting workers plus
// the calling thread), and workers share themselves across the active
// regions chunk by chunk. Only when every arena slot is taken does an extra
// caller degrade to inline serial execution (counted in parallel_stats()).
// Exceptions thrown by the body are captured and rethrown on the calling
// thread.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/function_ref.h"

namespace tdc {

/// Current worker count (>= 1).
int num_threads();

/// Override the worker count (clamped to >= 1). Takes effect on the next
/// parallel_for; safe to call between parallel regions only.
void set_num_threads(int n);

/// True when called from inside a parallel_for body.
bool in_parallel_region();

/// Hard bound on simultaneously active fork/join regions (arena slots the
/// pool carries; inter_op is clamped to it).
inline constexpr int kMaxArenas = 8;

/// Inter-op/intra-op split of the shared pool (the ATen/TBB task-arena
/// model). `inter_op` bounds how many top-level fork/join regions may run
/// concurrently; `intra_op` bounds the threads serving any one region (the
/// calling thread plus up to intra_op - 1 assisting pool workers). The
/// product may exceed num_threads(): workers are shared, the caps only bound
/// each region's share. Resolution order per field: set_arena_config,
/// TDC_INTER_OP / TDC_INTRA_OP (strictly parsed, common/env.h), defaults
/// (inter_op = kMaxArenas; intra_op = 0 meaning "track num_threads()").
struct ArenaConfig {
  int inter_op = 0;  ///< 0 = default (kMaxArenas)
  int intra_op = 0;  ///< 0 = default (num_threads())
};

/// The resolved configuration (fields never 0; intra_op reported as the
/// current effective width).
ArenaConfig arena_config();

/// Override the arena split; 0-valued fields keep their default resolution.
/// Takes effect at the next region admission — safe to call at any time.
void set_arena_config(const ArenaConfig& config);

/// Process-wide observability counters of the shared runtime. The serving
/// tier reads these to see when it is oversubscribing the pool: the arenas
/// serve up to inter_op concurrent top-level fork/join regions, and a caller
/// that arrives when every slot is taken degrades to inline serial
/// execution — correct, but one core. That degradation is counted (and noted
/// once per process on stderr) so a multi-client deployment has a baseline;
/// a serving fleet sized within the arena bound should see
/// serial_fallbacks stay flat.
struct ParallelStats {
  std::int64_t pool_regions = 0;      ///< regions fanned out on the pool
  std::int64_t inline_regions = 0;    ///< regions inline by policy (one
                                      ///  chunk, or a single-thread runtime)
  std::int64_t serial_fallbacks = 0;  ///< regions inline because every arena
                                      ///  slot held another caller's region
  std::int64_t arena_regions = 0;     ///< pool regions that ran concurrently
                                      ///  with at least one other region
  std::int64_t peak_concurrent_regions = 0;  ///< high-water mark of
                                             ///  simultaneously active regions
};

/// Snapshot of the counters (monotonic since process start).
ParallelStats parallel_stats();

/// Default minimum iterations per chunk before a loop is worth splitting.
inline constexpr std::int64_t kDefaultGrainSize = 1;

namespace detail {

inline std::int64_t divup(std::int64_t x, std::int64_t y) {
  return (x + y - 1) / y;
}

/// Runs fn(chunk_id) for chunk_id in [0, num_chunks) across the pool,
/// including the calling thread; blocks until every chunk finished. Takes a
/// non-owning FunctionRef — opening a region performs no heap allocation, so
/// parallel loops are legal inside DenyAllocGuard-protected serving paths.
void run_chunked(std::int64_t num_chunks, FunctionRef<void(std::int64_t)> fn);

}  // namespace detail

/// Calls f(sub_begin, sub_end) over a static partition of [begin, end).
/// Ranges shorter than grain_size (or any call made with one thread, or from
/// inside another parallel region) run inline on the caller.
template <class F>
void parallel_for(std::int64_t begin, std::int64_t end,
                  std::int64_t grain_size, const F& f) {
  if (begin >= end) {
    return;
  }
  // The thread-local nested-region test comes first: it keeps nested calls
  // (every GEMM inside an already-parallel loop) off the runtime's shared
  // state entirely.
  if (in_parallel_region()) {
    f(begin, end);
    return;
  }
  const std::int64_t range = end - begin;
  const std::int64_t grain = std::max<std::int64_t>(grain_size, 1);
  if (range <= grain) {
    f(begin, end);
    return;
  }
  const int nt = num_threads();
  if (nt == 1) {
    f(begin, end);
    return;
  }
  const std::int64_t chunks =
      std::min<std::int64_t>(nt, detail::divup(range, grain));
  const std::int64_t chunk_size = detail::divup(range, chunks);
  detail::run_chunked(chunks, [&](std::int64_t chunk) {
    const std::int64_t b = begin + chunk * chunk_size;
    const std::int64_t e = std::min(b + chunk_size, end);
    if (b < e) {
      f(b, e);
    }
  });
}

/// Reduction over [begin, end): acc = f(sub_begin, sub_end, ident) per chunk,
/// then left-fold of the partials with combine. The fold order is fixed by
/// chunk index, so results are deterministic for a given thread count.
template <class T, class F, class Combine>
T parallel_reduce(std::int64_t begin, std::int64_t end,
                  std::int64_t grain_size, T ident, const F& f,
                  const Combine& combine) {
  if (begin >= end) {
    return ident;
  }
  if (in_parallel_region()) {
    return f(begin, end, ident);
  }
  const std::int64_t range = end - begin;
  const std::int64_t grain = std::max<std::int64_t>(grain_size, 1);
  if (range <= grain) {
    return f(begin, end, ident);
  }
  const int nt = num_threads();
  if (nt == 1) {
    return f(begin, end, ident);
  }
  const std::int64_t chunks =
      std::min<std::int64_t>(nt, detail::divup(range, grain));
  const std::int64_t chunk_size = detail::divup(range, chunks);
  std::vector<T> partial(static_cast<std::size_t>(chunks), ident);
  detail::run_chunked(chunks, [&](std::int64_t chunk) {
    const std::int64_t b = begin + chunk * chunk_size;
    const std::int64_t e = std::min(b + chunk_size, end);
    if (b < e) {
      partial[static_cast<std::size_t>(chunk)] = f(b, e, ident);
    }
  });
  T acc = ident;
  for (const T& p : partial) {
    acc = combine(acc, p);
  }
  return acc;
}

}  // namespace tdc
