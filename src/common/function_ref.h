// Non-owning callable reference for allocation-free callback plumbing.
//
// std::function type-erases by value: any callable bigger than the
// small-object buffer (two pointers on libstdc++ — less than one lambda with
// three reference captures) goes to the heap, which put one hidden
// allocation inside every parallel region the runtime opened. FunctionRef
// erases by reference instead: two raw words, no ownership, no allocation,
// trivially copyable. The referenced callable must outlive the FunctionRef —
// exactly the fork/join contract of parallel_for / run_slotted, whose
// callables live on the calling frame for the whole region.
#pragma once

#include <type_traits>
#include <utility>

namespace tdc {

template <class Sig>
class FunctionRef;

template <class R, class... Args>
class FunctionRef<R(Args...)> {
 public:
  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef>>>
  // NOLINTNEXTLINE(google-explicit-constructor): callable adaptor by design
  FunctionRef(const F& f)
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<const std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace tdc
