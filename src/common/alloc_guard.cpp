#include "common/alloc_guard.h"

#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>

#include "common/check.h"

namespace tdc {

namespace detail {

thread_local AllocGuardState t_alloc_guard;
std::atomic<int> g_alloc_guard_enabled{-1};

}  // namespace detail

namespace {

std::atomic<std::int64_t> g_violations{0};

int resolve_enabled() {
  if (const char* env = std::getenv("TDC_ALLOC_GUARD"); env != nullptr) {
    return env[0] == '1' ? 1 : 0;
  }
#ifdef NDEBUG
  return 0;
#else
  // Debug builds arm by default so the suite exercises the deny paths
  // without configuration.
  return 1;
#endif
}

}  // namespace

bool alloc_guard_enabled() {
  int v = detail::g_alloc_guard_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    v = resolve_enabled();
    detail::g_alloc_guard_enabled.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void set_alloc_guard(bool on) {
  detail::g_alloc_guard_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

std::int64_t alloc_guard_violations() {
  return g_violations.load(std::memory_order_relaxed);
}

namespace detail {

void alloc_guard_violation(std::size_t bytes) {
  g_violations.fetch_add(1, std::memory_order_relaxed);
  const char* site =
      t_alloc_guard.site != nullptr ? t_alloc_guard.site : "<unknown site>";
  // Building the message (and the exception object's string) must itself be
  // allowed to allocate, or the throw would recurse into the guard.
  AllowAllocScope allow;
  throw Error("heap allocation of " + std::to_string(bytes) +
                  " bytes inside allocation-free region '" + site +
                  "' (DenyAllocGuard)",
              ErrorCode::kInternal);
}

}  // namespace detail

}  // namespace tdc

// ---------------------------------------------------------------------------
// Global operator new/delete interposition. Linking the tdc library replaces
// the default operators for the whole process: the fast path costs one
// thread-local integer test per allocation, and deallocation is never denied
// (frees inside a guarded region are legal — run paths own no heap memory to
// free, and the unwinding of a denied allocation must be able to release
// temporaries). Memory always comes from malloc/posix_memalign, so pointers
// allocated before a guard arms are freed consistently after it.

namespace {

inline void deny_check(std::size_t bytes) {
  const tdc::detail::AllocGuardState& g = tdc::detail::t_alloc_guard;
  if (g.depth > 0 && g.bypass == 0) {
    tdc::detail::alloc_guard_violation(bytes);
  }
}

void* checked_alloc(std::size_t bytes) {
  deny_check(bytes);
  if (bytes == 0) {
    bytes = 1;
  }
  void* p = std::malloc(bytes);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* checked_aligned_alloc(std::size_t bytes, std::size_t align) {
  deny_check(bytes);
  if (bytes == 0) {
    bytes = 1;
  }
  void* p = nullptr;
  if (align < sizeof(void*)) {
    align = sizeof(void*);
  }
  if (posix_memalign(&p, align, bytes) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void* operator new(std::size_t bytes) { return checked_alloc(bytes); }
void* operator new[](std::size_t bytes) { return checked_alloc(bytes); }

void* operator new(std::size_t bytes, const std::nothrow_t&) noexcept {
  try {
    return checked_alloc(bytes);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t bytes, const std::nothrow_t&) noexcept {
  try {
    return checked_alloc(bytes);
  } catch (...) {
    return nullptr;
  }
}

void* operator new(std::size_t bytes, std::align_val_t align) {
  return checked_aligned_alloc(bytes, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t bytes, std::align_val_t align) {
  return checked_aligned_alloc(bytes, static_cast<std::size_t>(align));
}
void* operator new(std::size_t bytes, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  try {
    return checked_aligned_alloc(bytes, static_cast<std::size_t>(align));
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t bytes, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  try {
    return checked_aligned_alloc(bytes, static_cast<std::size_t>(align));
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, std::size_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t, std::size_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}
