#include "common/deadline.h"

#include <limits>
#include <string>

#include "common/alloc_guard.h"
#include "common/check.h"

namespace tdc {

namespace {

thread_local const Deadline* t_deadline = nullptr;

}  // namespace

Deadline Deadline::after(double seconds) {
  if (seconds < 0.0) {
    seconds = 0.0;
  }
  return at(std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(seconds)));
}

Deadline Deadline::at(std::chrono::steady_clock::time_point tp) {
  Deadline d;
  d.tp_ = tp;
  d.armed_ = true;
  return d;
}

double Deadline::remaining_s() const {
  if (!armed_) {
    return std::numeric_limits<double>::infinity();
  }
  return std::chrono::duration<double>(tp_ - std::chrono::steady_clock::now())
      .count();
}

namespace detail {

const Deadline* active_deadline() { return t_deadline; }

const Deadline* exchange_active_deadline(const Deadline* d) {
  const Deadline* prev = t_deadline;
  t_deadline = d;
  return prev;
}

void deadline_exceeded(const char* where) {
  // Expiry fires inside guarded run paths; the error message is the
  // sanctioned cold-path allocation.
  AllowAllocScope allow;
  throw Error(std::string("deadline exceeded at ") + where,
              ErrorCode::kDeadlineExceeded);
}

}  // namespace detail

DeadlineScope::DeadlineScope(const Deadline& deadline)
    : effective_(deadline), prev_(t_deadline) {
  // Nesting never extends an outer budget: keep the earlier deadline.
  if (prev_ != nullptr && prev_->armed() &&
      (!effective_.armed() ||
       prev_->remaining_s() < effective_.remaining_s())) {
    effective_ = *prev_;
  }
  t_deadline = effective_.armed() ? &effective_ : prev_;
}

DeadlineScope::~DeadlineScope() { t_deadline = prev_; }

}  // namespace tdc
