#include "common/rng.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace tdc {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed the four lanes through splitmix64 as recommended by the authors of
  // xoshiro, so that nearby seeds give unrelated streams.
  std::uint64_t sm = seed;
  for (auto& lane : s_) {
    lane = splitmix64(sm);
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits → double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; guard u1 away from zero so log() stays finite.
  double u1 = uniform();
  if (u1 < 1e-300) {
    u1 = 1e-300;
  }
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  TDC_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t x = next_u64();
  while (x >= limit) {
    x = next_u64();
  }
  return x % n;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = i;
  }
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(uniform_index(i));
    std::swap(p[i - 1], p[j]);
  }
  return p;
}

}  // namespace tdc
