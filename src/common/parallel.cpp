#include "common/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "common/alloc_guard.h"
#include "common/annotations.h"
#include "common/deadline.h"
#include "common/env.h"

namespace tdc {

namespace {

thread_local bool t_in_parallel = false;

int hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

int env_num_threads() {
  // Strictly parsed: TDC_NUM_THREADS=abc or =8x warns once and falls back to
  // hardware concurrency instead of being silently misread.
  const auto v = env_int("TDC_NUM_THREADS", 1, 4096);
  return v.has_value() ? static_cast<int>(*v) : 0;
}

int initial_num_threads() {
  const int env = env_num_threads();
  return env >= 1 ? env : hardware_threads();
}

std::atomic<std::int64_t> g_pool_regions{0};
std::atomic<std::int64_t> g_inline_regions{0};
std::atomic<std::int64_t> g_serial_fallbacks{0};
std::atomic<std::int64_t> g_arena_regions{0};
std::atomic<std::int64_t> g_peak_regions{0};
std::atomic<bool> g_fallback_noted{false};

// Region-start accounting, called by the pool outside its mutex.
void note_region_started(bool shared, int concurrent) {
  g_pool_regions.fetch_add(1, std::memory_order_relaxed);
  if (shared) {
    g_arena_regions.fetch_add(1, std::memory_order_relaxed);
  }
  std::int64_t peak = g_peak_regions.load(std::memory_order_relaxed);
  while (concurrent > peak &&
         !g_peak_regions.compare_exchange_weak(peak, concurrent,
                                               std::memory_order_relaxed)) {
  }
}

// Task-arena pool (the ATen Parallel.h / TBB arena idiom, PR 9): one
// persistent set of workers serves up to kMaxArenas concurrent top-level
// fork/join regions. Each region is an arena slot holding its function
// object, an atomic chunk cursor, and completion accounting; the calling
// thread always drains its own region, and idle workers pick any active
// region whose assisting-worker count is below the region's intra-op share.
// Workers re-select a region per drain, so they redistribute across arenas
// as regions open and close. run() does not return until every chunk of its
// region has executed AND no worker is still inside it, so the function
// object can never dangle.
class ThreadPool {
 public:
  explicit ThreadPool(int workers) {
    workers_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i) {
      workers_.emplace_back([this, i] { worker_loop(i); });
    }
  }

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      stop_ = true;
    }
    work_ready_.notify_all();
    for (std::thread& t : workers_) {
      t.join();
    }
  }

  /// Runs the region on an arena slot; the caller participates and up to
  /// `max_assists` pool workers help. Returns false — having run nothing —
  /// when region admission fails (every slot taken, or more than
  /// `max_regions` regions active): the caller runs inline instead.
  TDC_RUN_PATH bool run(std::int64_t num_chunks, int max_regions,
                        int max_assists,
                        FunctionRef<void(std::int64_t)> fn) {
    // The arena admission handoff is the library's sanctioned blocking
    // point on the run path: slot state is published under mutex_ and the
    // join waits on region_done_. TSan-verified.
    TDC_ANALYZE_ALLOW(run-path-lock);
    Region* r = nullptr;
    bool shared = false;
    int concurrent = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (active_regions_ >= max_regions) {
        return false;
      }
      for (Region& slot : regions_) {
        if (!slot.active) {
          r = &slot;
          break;
        }
      }
      if (r == nullptr) {
        return false;
      }
      r->active = true;
      r->fn = &fn;
      r->total_chunks = num_chunks;
      r->next_chunk.store(0, std::memory_order_relaxed);
      r->done_chunks = 0;
      r->assists = 0;
      r->max_assists = max_assists;
      r->first_error = nullptr;
      ++active_regions_;
      shared = active_regions_ > 1;
      concurrent = active_regions_;
    }
    note_region_started(shared, concurrent);
    if (max_assists > 0) {
      work_ready_.notify_all();
    }

    drain(*r, fn);  // the caller is its region's first executor

    std::exception_ptr err;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      region_done_.wait(lock, [r] {
        return r->done_chunks >= r->total_chunks && r->assists == 0;
      });
      err = r->first_error;
      r->first_error = nullptr;
      r->fn = nullptr;
      r->active = false;
      --active_regions_;
    }
    if (err) {
      std::rethrow_exception(err);
    }
    return true;
  }

 private:
  struct Region {
    bool active = false;  ///< slot occupancy, under mutex_
    const FunctionRef<void(std::int64_t)>* fn = nullptr;
    std::int64_t total_chunks = 0;
    std::atomic<std::int64_t> next_chunk{0};  ///< lock-free chunk cursor
    std::int64_t done_chunks = 0;  ///< completed chunks, under mutex_
    int assists = 0;       ///< pool workers inside the region, under mutex_
    int max_assists = 0;   ///< the region's intra-op share (workers)
    std::exception_ptr first_error;  ///< under mutex_
  };

  // True when a pool worker may usefully enter the region. Under mutex_.
  static bool assistable(const Region& r) {
    return r.active && r.assists < r.max_assists &&
           r.next_chunk.load(std::memory_order_relaxed) < r.total_chunks;
  }

  // Pulls chunk indices from one region until its cursor is exhausted.
  // Called outside mutex_; completion is recorded under it.
  TDC_RUN_PATH void drain(Region& r, FunctionRef<void(std::int64_t)> fn) {
    // Completion accounting of the fork/join handoff (see run()).
    TDC_ANALYZE_ALLOW(run-path-lock);
    std::int64_t executed = 0;
    std::exception_ptr error;
    std::int64_t chunk;
    while ((chunk = r.next_chunk.fetch_add(1, std::memory_order_relaxed)) <
           r.total_chunks) {
      t_in_parallel = true;
      try {
        fn(chunk);
      } catch (...) {
        if (!error) {
          error = std::current_exception();
        }
      }
      t_in_parallel = false;
      ++executed;
    }
    if (executed > 0 || error) {
      std::unique_lock<std::mutex> lock(mutex_);
      r.done_chunks += executed;
      if (error && !r.first_error) {
        r.first_error = error;
      }
      if (r.done_chunks >= r.total_chunks && r.assists == 0) {
        region_done_.notify_all();
      }
    }
  }

  TDC_RUN_PATH void worker_loop(int id) {
    // Workers sleep on work_ready_ between regions; the wait and the
    // assisting-worker bookkeeping are the sanctioned pool blocking point.
    TDC_ANALYZE_ALLOW(run-path-lock);
    for (;;) {
      Region* r = nullptr;
      const FunctionRef<void(std::int64_t)>* fn = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_ready_.wait(lock, [this] {
          if (stop_) {
            return true;
          }
          for (const Region& slot : regions_) {
            if (assistable(slot)) {
              return true;
            }
          }
          return false;
        });
        if (stop_) {
          return;
        }
        // Scan from a per-worker offset so concurrent regions spread the
        // workers instead of all piling onto slot 0.
        for (int k = 0; k < kMaxArenas; ++k) {
          Region& slot = regions_[(id + k) % kMaxArenas];
          if (assistable(slot)) {
            r = &slot;
            break;
          }
        }
        if (r == nullptr) {
          continue;  // another worker took the last eligible region
        }
        ++r->assists;
        fn = r->fn;
      }
      drain(*r, *fn);
      {
        std::unique_lock<std::mutex> lock(mutex_);
        --r->assists;
        if (r->done_chunks >= r->total_chunks && r->assists == 0) {
          region_done_.notify_all();
        }
      }
    }
  }

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable region_done_;
  std::vector<std::thread> workers_;
  Region regions_[kMaxArenas];
  int active_regions_ = 0;  ///< under mutex_
  bool stop_ = false;
};

std::mutex g_pool_mutex;
// The pool is shared-owned: run_chunked pins its pool for the whole region,
// so a concurrent set_num_threads can swap the global pointer without ever
// destroying a pool mid-region — the old pool dies when its last in-flight
// region finishes.
std::shared_ptr<ThreadPool> g_pool;
std::atomic<int> g_num_threads{0};  // 0 = not yet resolved
std::atomic<int> g_inter_op{0};     // 0 = not yet resolved
std::atomic<int> g_intra_op{-1};    // -1 = not yet resolved; 0 = track
                                    // num_threads()

void note_serial_fallback() {
  // One-shot stderr diagnostic (first fallback only); steady-state runs
  // never reach the fprintf.
  TDC_ANALYZE_ALLOW(run-path-io);
  g_serial_fallbacks.fetch_add(1, std::memory_order_relaxed);
  if (!g_fallback_noted.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "tdc: more concurrent top-level parallel callers than "
                 "arena slots (inter_op=%d) — extra callers run inline "
                 "serial (counted in tdc::parallel_stats())\n",
                 arena_config().inter_op);
  }
}

int resolve_num_threads_locked() {
  int nt = g_num_threads.load(std::memory_order_relaxed);
  if (nt == 0) {
    nt = initial_num_threads();
    g_num_threads.store(nt, std::memory_order_relaxed);
  }
  return nt;
}

int clamp_inter_op(int v) {
  return v < 1 ? 1 : (v > kMaxArenas ? kMaxArenas : v);
}

// Resolved inter-op bound (>= 1). First call reads TDC_INTER_OP strictly.
int resolve_inter_op() {
  int v = g_inter_op.load(std::memory_order_relaxed);
  if (v == 0) {
    const auto env = env_int("TDC_INTER_OP", 1, kMaxArenas);
    v = clamp_inter_op(env.has_value() ? static_cast<int>(*env) : kMaxArenas);
    g_inter_op.store(v, std::memory_order_relaxed);
  }
  return v;
}

// Resolved intra-op width (>= 1): 0 in the stored config means "track
// num_threads()". First call reads TDC_INTRA_OP strictly.
int resolve_intra_op() {
  int v = g_intra_op.load(std::memory_order_relaxed);
  if (v == -1) {
    const auto env = env_int("TDC_INTRA_OP", 1, 4096);
    v = env.has_value() ? static_cast<int>(*env) : 0;
    g_intra_op.store(v, std::memory_order_relaxed);
  }
  return v == 0 ? num_threads() : v;
}

void run_inline(std::int64_t num_chunks, FunctionRef<void(std::int64_t)> fn) {
  t_in_parallel = true;
  try {
    for (std::int64_t c = 0; c < num_chunks; ++c) {
      fn(c);
    }
  } catch (...) {
    t_in_parallel = false;
    throw;
  }
  t_in_parallel = false;
}

}  // namespace

int num_threads() {
  // First-call resolution takes the pool mutex once; the steady state is
  // the relaxed atomic load above it.
  TDC_ANALYZE_ALLOW(run-path-lock);
  const int nt = g_num_threads.load(std::memory_order_relaxed);
  if (nt != 0) {
    return nt;
  }
  std::unique_lock<std::mutex> lock(g_pool_mutex);
  return resolve_num_threads_locked();
}

void set_num_threads(int n) {
  const int clamped = n < 1 ? 1 : n;
  std::shared_ptr<ThreadPool> retired;
  {
    std::unique_lock<std::mutex> lock(g_pool_mutex);
    if (clamped != g_num_threads.load(std::memory_order_relaxed)) {
      retired = std::move(g_pool);  // rebuilt lazily at the new size
      g_pool = nullptr;
      g_num_threads.store(clamped, std::memory_order_relaxed);
    }
  }
  // `retired` (if any) is destroyed here, outside the mutex. Regions still
  // in flight on it hold their own references; the pool joins its workers
  // when the last reference drops.
}

ArenaConfig arena_config() {
  ArenaConfig c;
  c.inter_op = resolve_inter_op();
  c.intra_op = resolve_intra_op();
  return c;
}

void set_arena_config(const ArenaConfig& config) {
  if (config.inter_op != 0) {
    g_inter_op.store(clamp_inter_op(config.inter_op),
                     std::memory_order_relaxed);
  } else {
    // Back to the default resolution (env, then kMaxArenas) at next use.
    g_inter_op.store(0, std::memory_order_relaxed);
  }
  if (config.intra_op != 0) {
    g_intra_op.store(config.intra_op < 1 ? 1 : config.intra_op,
                     std::memory_order_relaxed);
  } else {
    // Back to the default resolution (env, then num_threads()) at next use.
    g_intra_op.store(-1, std::memory_order_relaxed);
  }
}

bool in_parallel_region() { return t_in_parallel; }

ParallelStats parallel_stats() {
  ParallelStats s;
  s.pool_regions = g_pool_regions.load(std::memory_order_relaxed);
  s.inline_regions = g_inline_regions.load(std::memory_order_relaxed);
  s.serial_fallbacks = g_serial_fallbacks.load(std::memory_order_relaxed);
  s.arena_regions = g_arena_regions.load(std::memory_order_relaxed);
  s.peak_concurrent_regions = g_peak_regions.load(std::memory_order_relaxed);
  return s;
}

namespace detail {

TDC_RUN_PATH void run_chunked(std::int64_t num_chunks,
                              FunctionRef<void(std::int64_t)> fn) {
  // Arena admission: g_pool_mutex guards lazy pool construction and the
  // shared-ownership pin; it is released before the pool handoff. A caller
  // the arenas cannot admit (every slot taken) runs inline on its own
  // thread — correct, but serial, so it is counted.
  TDC_ANALYZE_ALLOW(run-path-lock);
  if (num_chunks <= 0) {
    return;
  }
  if (num_chunks == 1) {
    g_inline_regions.fetch_add(1, std::memory_order_relaxed);
    run_inline(num_chunks, fn);
    return;
  }
  std::shared_ptr<ThreadPool> pool;
  {
    std::unique_lock<std::mutex> lock(g_pool_mutex);
    const int nt = resolve_num_threads_locked();
    if (nt > 1 && !g_pool) {
      // One-time pool construction may be triggered by the first guarded
      // run; infrastructure warm-up is the sanctioned allocation.
      AllowAllocScope warmup;
      g_pool = std::make_shared<ThreadPool>(nt - 1);
    }
    pool = g_pool;  // pin: survives a concurrent set_num_threads
  }
  if (pool == nullptr) {
    g_inline_regions.fetch_add(1, std::memory_order_relaxed);
    run_inline(num_chunks, fn);
    return;
  }
  const int max_regions = resolve_inter_op();
  const int max_assists = resolve_intra_op() - 1;
  // The caller's armed deadline and armed alloc guard (if any) ride into the
  // pool workers, so cancellation polls and allocation denial inside worker
  // chunks (GEMM bands of a batched run) observe them. The wrapper is a
  // stack lambda behind a FunctionRef — no heap allocation either way — and
  // exists only on deadlined/guarded regions.
  const Deadline* dl = detail::active_deadline();
  const bool guarded = t_alloc_guard.depth > 0 && t_alloc_guard.bypass == 0;
  if (dl == nullptr && !guarded) {
    if (!pool->run(num_chunks, max_regions, max_assists, fn)) {
      note_serial_fallback();
      run_inline(num_chunks, fn);
    }
    return;
  }
  const char* guard_site = guarded ? t_alloc_guard.site : nullptr;
  const auto propagated = [dl, guarded, guard_site,
                           fn](std::int64_t chunk) {
    const Deadline* prev =
        dl != nullptr ? exchange_active_deadline(dl) : nullptr;
    struct Restore {
      const Deadline* dl;
      const Deadline* prev;
      ~Restore() {
        if (dl != nullptr) {
          exchange_active_deadline(prev);
        }
      }
    } restore{dl, prev};
    if (guarded) {
      DenyAllocGuard guard(guard_site);
      fn(chunk);
    } else {
      fn(chunk);
    }
  };
  if (!pool->run(num_chunks, max_regions, max_assists, propagated)) {
    note_serial_fallback();
    run_inline(num_chunks, fn);  // deadline/guard are already armed here
  }
}

}  // namespace detail

}  // namespace tdc
