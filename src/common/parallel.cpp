#include "common/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "common/alloc_guard.h"
#include "common/annotations.h"
#include "common/deadline.h"

namespace tdc {

namespace {

thread_local bool t_in_parallel = false;

int hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

int env_num_threads() {
  const char* env = std::getenv("TDC_NUM_THREADS");
  if (env == nullptr) {
    return 0;
  }
  const long v = std::strtol(env, nullptr, 10);
  return v >= 1 ? static_cast<int>(v) : 0;
}

int initial_num_threads() {
  const int env = env_num_threads();
  return env >= 1 ? env : hardware_threads();
}

// Persistent fork/join pool. The calling thread participates in every
// parallel region, so the pool owns num_threads()-1 workers. Chunk indices
// are handed out through an atomic counter; a generation number wakes the
// workers. run() does not return until every chunk has executed AND no
// worker is still inside the region, so the function object can never
// dangle across regions.
class ThreadPool {
 public:
  explicit ThreadPool(int workers) {
    workers_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      stop_ = true;
    }
    work_ready_.notify_all();
    for (std::thread& t : workers_) {
      t.join();
    }
  }

  TDC_RUN_PATH void run(std::int64_t num_chunks,
                        FunctionRef<void(std::int64_t)> fn) {
    // The pool's fork/join handoff is the library's one sanctioned blocking
    // point on the run path: region state is published under mutex_ and the
    // join waits on all_done_. TSan-verified (PR 7).
    TDC_ANALYZE_ALLOW(run-path-lock);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      fn_ = &fn;
      total_chunks_ = num_chunks;
      next_chunk_.store(0, std::memory_order_relaxed);
      done_chunks_ = 0;
      first_error_ = nullptr;
      ++generation_;
    }
    work_ready_.notify_all();

    drain(fn);  // the caller is worker 0

    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] {
      return done_chunks_ >= total_chunks_ && active_workers_ == 0;
    });
    fn_ = nullptr;
    if (first_error_) {
      std::exception_ptr err = first_error_;
      first_error_ = nullptr;
      lock.unlock();
      std::rethrow_exception(err);
    }
  }

 private:
  // Pulls chunk indices until the region is exhausted. Called with the
  // region's function object; completion is recorded under the mutex.
  TDC_RUN_PATH void drain(FunctionRef<void(std::int64_t)> fn) {
    // Completion accounting of the fork/join handoff (see run()).
    TDC_ANALYZE_ALLOW(run-path-lock);
    std::int64_t executed = 0;
    std::exception_ptr error;
    std::int64_t chunk;
    while ((chunk = next_chunk_.fetch_add(1, std::memory_order_relaxed)) <
           total_chunks_) {
      t_in_parallel = true;
      try {
        fn(chunk);
      } catch (...) {
        if (!error) {
          error = std::current_exception();
        }
      }
      t_in_parallel = false;
      ++executed;
    }
    if (executed > 0 || error) {
      std::unique_lock<std::mutex> lock(mutex_);
      done_chunks_ += executed;
      if (error && !first_error_) {
        first_error_ = error;
      }
      if (done_chunks_ >= total_chunks_) {
        all_done_.notify_all();
      }
    }
  }

  TDC_RUN_PATH void worker_loop() {
    // Workers sleep on work_ready_ between regions; the wait and the
    // active-worker bookkeeping are the sanctioned pool blocking point.
    TDC_ANALYZE_ALLOW(run-path-lock);
    std::uint64_t seen_generation = 0;
    for (;;) {
      const FunctionRef<void(std::int64_t)>* fn = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_ready_.wait(lock, [&] {
          return stop_ || generation_ != seen_generation;
        });
        if (stop_) {
          return;
        }
        seen_generation = generation_;
        fn = fn_;
        ++active_workers_;
      }
      if (fn != nullptr) {
        drain(*fn);
      }
      {
        std::unique_lock<std::mutex> lock(mutex_);
        --active_workers_;
        if (active_workers_ == 0 && done_chunks_ >= total_chunks_) {
          all_done_.notify_all();
        }
      }
    }
  }

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::vector<std::thread> workers_;
  const FunctionRef<void(std::int64_t)>* fn_ = nullptr;
  std::int64_t total_chunks_ = 0;
  std::atomic<std::int64_t> next_chunk_{0};
  std::int64_t done_chunks_ = 0;
  int active_workers_ = 0;
  std::uint64_t generation_ = 0;
  std::exception_ptr first_error_ = nullptr;
  bool stop_ = false;
};

std::mutex g_pool_mutex;
// Held for the whole of one fork/join region: the pool supports a single
// active region at a time, so a second top-level caller falls back to
// inline execution instead of corrupting the active region's state.
std::mutex g_region_mutex;
std::unique_ptr<ThreadPool> g_pool;
std::atomic<int> g_num_threads{0};  // 0 = not yet resolved

std::atomic<std::int64_t> g_pool_regions{0};
std::atomic<std::int64_t> g_inline_regions{0};
std::atomic<std::int64_t> g_serial_fallbacks{0};
std::atomic<bool> g_fallback_noted{false};

void note_serial_fallback() {
  // One-shot stderr diagnostic (first fallback only); steady-state runs
  // never reach the fprintf.
  TDC_ANALYZE_ALLOW(run-path-io);
  g_serial_fallbacks.fetch_add(1, std::memory_order_relaxed);
  if (!g_fallback_noted.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "tdc: concurrent top-level parallel callers — the pool "
                 "serves one region at a time, extra callers run inline "
                 "serial (counted in tdc::parallel_stats())\n");
  }
}

int resolve_num_threads_locked() {
  int nt = g_num_threads.load(std::memory_order_relaxed);
  if (nt == 0) {
    nt = initial_num_threads();
    g_num_threads.store(nt, std::memory_order_relaxed);
  }
  return nt;
}

void run_inline(std::int64_t num_chunks, FunctionRef<void(std::int64_t)> fn) {
  t_in_parallel = true;
  try {
    for (std::int64_t c = 0; c < num_chunks; ++c) {
      fn(c);
    }
  } catch (...) {
    t_in_parallel = false;
    throw;
  }
  t_in_parallel = false;
}

}  // namespace

int num_threads() {
  // First-call resolution takes the pool mutex once; the steady state is
  // the relaxed atomic load above it.
  TDC_ANALYZE_ALLOW(run-path-lock);
  const int nt = g_num_threads.load(std::memory_order_relaxed);
  if (nt != 0) {
    return nt;
  }
  std::unique_lock<std::mutex> lock(g_pool_mutex);
  return resolve_num_threads_locked();
}

void set_num_threads(int n) {
  const int clamped = n < 1 ? 1 : n;
  // Take the region lock too so a resize never destroys a pool mid-region.
  std::unique_lock<std::mutex> region(g_region_mutex);
  std::unique_lock<std::mutex> lock(g_pool_mutex);
  if (clamped != g_num_threads.load(std::memory_order_relaxed)) {
    g_pool.reset();  // rebuilt lazily at the new size
    g_num_threads.store(clamped, std::memory_order_relaxed);
  }
}

bool in_parallel_region() { return t_in_parallel; }

ParallelStats parallel_stats() {
  ParallelStats s;
  s.pool_regions = g_pool_regions.load(std::memory_order_relaxed);
  s.inline_regions = g_inline_regions.load(std::memory_order_relaxed);
  s.serial_fallbacks = g_serial_fallbacks.load(std::memory_order_relaxed);
  return s;
}

namespace detail {

TDC_RUN_PATH void run_chunked(std::int64_t num_chunks,
                              FunctionRef<void(std::int64_t)> fn) {
  // Region admission: g_region_mutex is deliberately held for the whole
  // fork/join region — across the pool handoff AND the chunk callbacks it
  // runs — because the pool serves one region at a time; a losing caller
  // runs inline, it never blocks on the winner, and chunk callbacks never
  // re-enter the parallel runtime (the nested-region test pins this).
  // g_pool_mutex guards lazy pool construction. Both are the sanctioned
  // pool blocking points.
  TDC_ANALYZE_ALLOW(run-path-lock);
  TDC_ANALYZE_ALLOW(lock-across-pool);
  TDC_ANALYZE_ALLOW(lock-across-callback);
  if (num_chunks <= 0) {
    return;
  }
  if (num_chunks == 1) {
    g_inline_regions.fetch_add(1, std::memory_order_relaxed);
    run_inline(num_chunks, fn);
    return;
  }
  // One fork/join region at a time; a concurrent top-level caller runs its
  // range inline on its own thread — correct, but serial, so it is counted.
  std::unique_lock<std::mutex> region(g_region_mutex, std::try_to_lock);
  if (!region.owns_lock()) {
    note_serial_fallback();
    run_inline(num_chunks, fn);
    return;
  }
  ThreadPool* pool = nullptr;
  {
    std::unique_lock<std::mutex> lock(g_pool_mutex);
    const int nt = resolve_num_threads_locked();
    if (nt > 1 && !g_pool) {
      // One-time pool construction may be triggered by the first guarded
      // run; infrastructure warm-up is the sanctioned allocation.
      AllowAllocScope warmup;
      g_pool = std::make_unique<ThreadPool>(nt - 1);
    }
    pool = g_pool.get();
  }
  if (pool == nullptr) {
    region.unlock();
    g_inline_regions.fetch_add(1, std::memory_order_relaxed);
    run_inline(num_chunks, fn);
    return;
  }
  g_pool_regions.fetch_add(1, std::memory_order_relaxed);
  // The caller's armed deadline and armed alloc guard (if any) ride into the
  // pool workers, so cancellation polls and allocation denial inside worker
  // chunks (GEMM bands of a batched run) observe them. The wrapper is a
  // stack lambda behind a FunctionRef — no heap allocation either way — and
  // exists only on deadlined/guarded regions.
  const Deadline* dl = detail::active_deadline();
  const bool guarded = t_alloc_guard.depth > 0 && t_alloc_guard.bypass == 0;
  if (dl == nullptr && !guarded) {
    pool->run(num_chunks, fn);
    return;
  }
  const char* guard_site = guarded ? t_alloc_guard.site : nullptr;
  const auto propagated = [dl, guarded, guard_site,
                           fn](std::int64_t chunk) {
    const Deadline* prev =
        dl != nullptr ? exchange_active_deadline(dl) : nullptr;
    struct Restore {
      const Deadline* dl;
      const Deadline* prev;
      ~Restore() {
        if (dl != nullptr) {
          exchange_active_deadline(prev);
        }
      }
    } restore{dl, prev};
    if (guarded) {
      DenyAllocGuard guard(guard_site);
      fn(chunk);
    } else {
      fn(chunk);
    }
  };
  pool->run(num_chunks, propagated);
}

}  // namespace detail

}  // namespace tdc
