#include "common/check.h"

#include <sstream>

namespace tdc::detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& message) {
  std::ostringstream os;
  os << "TDC_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!message.empty()) {
    os << " — " << message;
  }
  throw Error(os.str());
}

}  // namespace tdc::detail
