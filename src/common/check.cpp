#include "common/check.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/alloc_guard.h"

namespace tdc {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidArgument:
      return "invalid_argument";
    case ErrorCode::kResourceExhausted:
      return "resource_exhausted";
    case ErrorCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case ErrorCode::kDataCorruption:
      return "data_corruption";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "unknown";
}

namespace {

// -1 = not yet resolved from the environment; 0/1 once decided or overridden.
std::atomic<int> g_check_finite{-1};

}  // namespace

bool check_finite_enabled() {
  int v = g_check_finite.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* env = std::getenv("TDC_CHECK_FINITE");
    v = env != nullptr && env[0] == '1' ? 1 : 0;
    g_check_finite.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void set_check_finite(bool on) {
  g_check_finite.store(on ? 1 : 0, std::memory_order_relaxed);
}

bool all_finite(const float* data, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    if (!std::isfinite(data[i])) {
      return false;
    }
  }
  return true;
}

namespace detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& message, ErrorCode code) {
  // A check may fail inside a DenyAllocGuard region; building the error
  // message is the sanctioned cold-path allocation.
  AllowAllocScope allow;
  std::ostringstream os;
  os << "TDC_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!message.empty()) {
    os << " — " << message;
  }
  throw Error(os.str(), code);
}

}  // namespace detail

}  // namespace tdc
