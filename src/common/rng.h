// Deterministic random number generation.
//
// Every stochastic component in the library (weight init, synthetic datasets,
// dropout-style perturbations) draws from an explicitly seeded Rng so that
// tests and benchmark tables are bit-reproducible across runs and machines.
#pragma once

#include <cstdint>
#include <vector>

namespace tdc {

/// xoshiro256** — small, fast, and identical on every platform (unlike
/// std::mt19937 + std::normal_distribution whose output is unspecified).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform in [0, 2^64).
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box–Muller (deterministic; caches the second value).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Fisher–Yates shuffle of indices [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace tdc
