#include "common/fault.h"

#include <cstdlib>
#include <map>
#include <mutex>

#include "common/alloc_guard.h"
#include "common/env.h"

namespace tdc {

namespace detail {
std::atomic<int> g_armed_faults{-1};
}  // namespace detail

namespace {

struct PointState {
  FaultSpec spec;
  bool armed = false;
  std::int64_t hits = 0;   ///< queries since arming
  std::int64_t fires = 0;  ///< queries that returned true
};

struct Registry {
  std::mutex mu;
  std::map<std::string, PointState, std::less<>> points;
  bool env_parsed = false;
};

Registry& registry() {
  static Registry r;
  return r;
}

// Callers hold registry().mu.
int armed_count_locked() {
  int n = 0;
  for (const auto& [name, p] : registry().points) {
    if (p.armed && (p.spec.count < 0 || p.fires < p.spec.count)) {
      ++n;
    }
  }
  return n;
}

// Parses one "point[=param][:skip[:count]]" clause. The skip/count fields go
// through the strict integer parser (common/env.h): a malformed field warns
// once naming TDC_FAULT and keeps the clause's default — a typo arms nothing
// harmful, and it is no longer silent.
void parse_clause_locked(const std::string& clause) {
  if (clause.empty()) {
    return;
  }
  std::string head = clause;
  FaultSpec spec;
  spec.count = 1;  // env-armed points fire once by default
  if (const std::size_t colon = head.find(':'); colon != std::string::npos) {
    const std::string tail = head.substr(colon + 1);
    head = head.substr(0, colon);
    std::string skip_text = tail;
    if (const std::size_t colon2 = tail.find(':');
        colon2 != std::string::npos) {
      skip_text = tail.substr(0, colon2);
      const std::string count_text = tail.substr(colon2 + 1);
      if (const auto count = parse_int_strict(count_text)) {
        spec.count = *count;
      } else {
        env_warn_invalid("TDC_FAULT", count_text);
      }
    }
    if (const auto skip = parse_int_strict(skip_text)) {
      spec.skip = *skip;
    } else {
      env_warn_invalid("TDC_FAULT", skip_text);
    }
  }
  if (const std::size_t eq = head.find('='); eq != std::string::npos) {
    spec.param = std::strtod(head.c_str() + eq + 1, nullptr);
    head = head.substr(0, eq);
  }
  if (!head.empty()) {
    PointState& p = registry().points[head];
    p = PointState{};
    p.spec = spec;
    p.armed = true;
  }
}

// Callers hold registry().mu.
void ensure_env_parsed_locked() {
  Registry& r = registry();
  if (r.env_parsed) {
    return;
  }
  r.env_parsed = true;
  if (const char* env = std::getenv("TDC_FAULT"); env != nullptr) {
    std::string text(env);
    std::size_t start = 0;
    while (start <= text.size()) {
      const std::size_t semi = text.find(';', start);
      const std::size_t end = semi == std::string::npos ? text.size() : semi;
      parse_clause_locked(text.substr(start, end - start));
      if (semi == std::string::npos) {
        break;
      }
      start = semi + 1;
    }
  }
  detail::g_armed_faults.store(armed_count_locked(),
                               std::memory_order_relaxed);
}

}  // namespace

void fault_arm(const std::string& point, const FaultSpec& spec) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  ensure_env_parsed_locked();
  PointState& p = r.points[point];
  p = PointState{};
  p.spec = spec;
  p.armed = true;
  detail::g_armed_faults.store(armed_count_locked(),
                               std::memory_order_relaxed);
}

void fault_disarm(const std::string& point) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  ensure_env_parsed_locked();
  if (const auto it = r.points.find(point); it != r.points.end()) {
    it->second.armed = false;
  }
  detail::g_armed_faults.store(armed_count_locked(),
                               std::memory_order_relaxed);
}

void fault_disarm_all() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.points.clear();
  // Forget the environment parse: after a disarm-all the next query re-reads
  // TDC_FAULT, so tests can setenv/unsetenv around this call.
  r.env_parsed = false;
  detail::g_armed_faults.store(-1, std::memory_order_relaxed);
}

bool fault_armed(const std::string& point) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  ensure_env_parsed_locked();
  const auto it = r.points.find(point);
  if (it == r.points.end() || !it->second.armed) {
    return false;
  }
  const PointState& p = it->second;
  return p.spec.count < 0 || p.fires < p.spec.count;
}

std::int64_t fault_fire_count(const std::string& point) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  ensure_env_parsed_locked();
  const auto it = r.points.find(point);
  return it == r.points.end() ? 0 : it->second.fires;
}

namespace detail {

bool fault_fire_slow(std::string_view point, double* param) {
  // Only reached when faults are armed (tests); first-query env parsing may
  // allocate, and probes sit inside DenyAllocGuard-protected run paths.
  AllowAllocScope allow;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  ensure_env_parsed_locked();
  const auto it = r.points.find(point);
  if (it == r.points.end() || !it->second.armed) {
    return false;
  }
  PointState& p = it->second;
  if (p.spec.count >= 0 && p.fires >= p.spec.count) {
    return false;
  }
  ++p.hits;
  if (p.hits <= p.spec.skip) {
    return false;
  }
  ++p.fires;
  if (p.spec.count >= 0 && p.fires >= p.spec.count) {
    // Exhausted: drop it from the armed count so the fast path goes back to
    // the single-load rejection.
    g_armed_faults.store(armed_count_locked(), std::memory_order_relaxed);
  }
  if (param != nullptr) {
    *param = p.spec.param;
  }
  return true;
}

}  // namespace detail

}  // namespace tdc
