// Allocation-interposition guard: "allocation-free serving" as a failing test.
//
// The plan/execute layer promises that OpPlan::run / run_batched and
// InferenceSession::run perform no heap allocation — the property that makes
// serving latency flat and makes the workspace contract ("the exact scratch
// one run touches") meaningful. Until now that promise was a comment plus
// code review. DenyAllocGuard turns it into a machine-checked invariant: the
// library interposes the global operator new/new[] (alloc_guard.cpp), and
// while a guard scope is live on the calling thread, any heap allocation
// throws a typed Error(kInternal) naming the guarded site:
//
//   DenyAllocGuard guard("OpPlan::run");
//   run_node(...);          // a hidden std::vector here now fails loudly
//
// Arming is process-wide and opt-in — TDC_ALLOC_GUARD=1 in the environment
// (read once) or set_alloc_guard(true) — because first-touch warm-up
// (thread_local pack buffers growing to their steady-state capacity) is
// allowed to allocate: tests and benches run one warm-up pass, then arm.
// Disarmed, constructing a guard is one relaxed atomic load and the
// interposed operator new costs one thread-local integer test — the same
// zero-cost-disarmed pattern as common/fault.h, enforced by
// bench_robustness. Guards nest; the innermost site is reported. Cold error
// paths that legitimately build exception messages inside a guarded region
// (TDC_CHECK failures, deadline expiry) open an AllowAllocScope around the
// construction.
//
// The guard scope is thread-local; the parallel runtime propagates an armed
// guard into the pool workers of any region the guarded thread opens
// (common/parallel.cpp), so a hidden allocation inside a worker chunk of a
// batched run is caught too.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace tdc {

/// True when guards actually deny: TDC_ALLOC_GUARD=1 (read once at first
/// query) or set_alloc_guard(true). Debug builds default to armed so the
/// suite exercises the deny paths without configuration.
bool alloc_guard_enabled();

/// Programmatic override of TDC_ALLOC_GUARD (tests, benches).
void set_alloc_guard(bool on);

/// Allocations denied (reported) since process start — lets tests assert the
/// disarmed configuration really never fired.
std::int64_t alloc_guard_violations();

namespace detail {

// Thread-local deny state, written only by the RAII types below. depth > 0
// and bypass == 0 means operator new throws. Raw ints (not atomics): each
// thread reads and writes only its own copy.
struct AllocGuardState {
  int depth = 0;
  int bypass = 0;
  const char* site = nullptr;
};
extern thread_local AllocGuardState t_alloc_guard;

// Enablement cache: -1 until TDC_ALLOC_GUARD has been read.
extern std::atomic<int> g_alloc_guard_enabled;

[[noreturn]] void alloc_guard_violation(std::size_t bytes);

}  // namespace detail

/// Denies heap allocation on the calling thread for the scope's lifetime
/// (when arming is enabled; otherwise a no-op). `site` must be a string
/// literal or otherwise outlive the scope — it is stored, not copied,
/// because copying would allocate.
class DenyAllocGuard {
 public:
  explicit DenyAllocGuard(const char* site) {
    if (alloc_guard_enabled()) {
      armed_ = true;
      prev_site_ = detail::t_alloc_guard.site;
      detail::t_alloc_guard.site = site;
      ++detail::t_alloc_guard.depth;
    }
  }
  ~DenyAllocGuard() {
    if (armed_) {
      --detail::t_alloc_guard.depth;
      detail::t_alloc_guard.site = prev_site_;
    }
  }
  DenyAllocGuard(const DenyAllocGuard&) = delete;
  DenyAllocGuard& operator=(const DenyAllocGuard&) = delete;

 private:
  bool armed_ = false;
  const char* prev_site_ = nullptr;
};

/// Suspends an enclosing DenyAllocGuard (cold paths only: building the
/// message of an exception that is about to unwind out of the guarded
/// region). No-op when no guard is live.
class AllowAllocScope {
 public:
  AllowAllocScope() { ++detail::t_alloc_guard.bypass; }
  ~AllowAllocScope() { --detail::t_alloc_guard.bypass; }
  AllowAllocScope(const AllowAllocScope&) = delete;
  AllowAllocScope& operator=(const AllowAllocScope&) = delete;
};

}  // namespace tdc
