// Fault-injection registry: named failure points, compiled in always.
//
// Serving-grade fault tolerance cannot be tested by faults that only exist in
// a special build: the guards that recover from allocation failure, corrupt
// caches and over-budget runs must be the exact code production executes.
// Each failure point is a named call site that asks the registry whether to
// misbehave right now:
//
//   if (fault_injected("exec.compile_alloc")) {
//     throw std::bad_alloc();   // the call site owns the failure mode
//   }
//
// Disarmed (the production steady state) the query is one relaxed atomic
// load — no lock, no map lookup, no branch history pollution; the
// bench_robustness CI step enforces the <1% end-to-end budget. Points are
// armed either programmatically (tests) or through the TDC_FAULT environment
// variable, read once at first query:
//
//   TDC_FAULT="point[=param][:skip[:count]][;point...]"
//
// e.g. TDC_FAULT="exec.op_delay=50" arms the op-delay point with a 50 ms
// parameter, TDC_FAULT="exec.compile_alloc:2:1" fires once after skipping
// two hits. Env-armed points default to count=1 (fire once) so an armed
// process degrades one operation, not every operation.
//
// Failure points currently wired (see tests/test_fault_injection.cpp):
//   exec.compile_alloc   plan/session compilation throws std::bad_alloc
//   exec.run_alloc       convenience-workspace allocation throws bad_alloc
//   exec.op_nan          an op-plan output is NaN-poisoned after the run
//   exec.op_delay        an op boundary sleeps `param` ms (deadline tests)
//   autotune.corrupt_save the autotune cache file is written corrupted
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace tdc {

/// Arming parameters of one failure point.
struct FaultSpec {
  std::int64_t skip = 0;    ///< hits to ignore before the first fire
  std::int64_t count = -1;  ///< fires before auto-disarm (-1 = unlimited)
  double param = 0.0;       ///< site-specific knob (e.g. delay in ms)
};

/// Arms `point`; replaces any previous arming (counters reset).
void fault_arm(const std::string& point, const FaultSpec& spec = {});

/// Disarms `point` (keeps its fire statistics until fault_disarm_all).
void fault_disarm(const std::string& point);

/// Disarms everything and clears statistics; also forgets the TDC_FAULT
/// parse so the next query re-reads the environment.
void fault_disarm_all();

/// True when `point` is armed and has fires remaining.
bool fault_armed(const std::string& point);

/// Times `point` has fired since the last fault_disarm_all().
std::int64_t fault_fire_count(const std::string& point);

namespace detail {

// Number of armed points; -1 until TDC_FAULT has been parsed. The disarmed
// fast path is a single relaxed load of this counter.
extern std::atomic<int> g_armed_faults;

bool fault_fire_slow(std::string_view point, double* param);

}  // namespace detail

/// The failure-point query. Returns true when the site should fail now; a
/// site with a parameter (delay duration, corruption length) receives it
/// through `param` when non-null.
inline bool fault_injected(std::string_view point, double* param = nullptr) {
  if (detail::g_armed_faults.load(std::memory_order_relaxed) == 0) {
    return false;
  }
  return detail::fault_fire_slow(point, param);
}

}  // namespace tdc
