// Deadline-aware cooperative cancellation.
//
// A serving tier cannot afford a run that hangs its caller: an over-budget
// request must come back as a typed error, with the session, plan cache and
// thread pool immediately reusable. Deadline is a wall-clock budget; a
// DeadlineScope arms it for the calling thread, and the execution layer
// polls deadline_poll() at natural grain boundaries — between op plans in a
// session walk, between images of a batched run, and between the packed
// GEMM's cache-block bands — throwing Error(kDeadlineExceeded) when the
// budget is gone:
//
//   DeadlineScope scope(Deadline::after(0.050));   // 50 ms budget
//   session.run(x, &y, workspace);                 // throws if over budget
//
// The armed deadline is thread-local; the parallel runtime propagates it to
// the pool workers of any region the deadlined thread opens, so cancellation
// reaches the row-band grains of a multi-threaded GEMM. With no scope armed
// a poll is one thread-local pointer test — the disarmed cost enforced by
// bench_robustness. Cancellation is cooperative and never tears state: polls
// sit between grains, not inside them, so a throw leaves every plan, cache
// and pool invariant intact and the next run is bit-identical to an
// unfaulted one.
#pragma once

#include <chrono>

namespace tdc {

/// A point in time the current operation must not run past. Default-built it
/// is unarmed (never expires).
class Deadline {
 public:
  Deadline() = default;

  /// Expires `seconds` from now (clamped to >= 0).
  static Deadline after(double seconds);

  /// Expires at `tp`.
  static Deadline at(std::chrono::steady_clock::time_point tp);

  bool armed() const { return armed_; }
  bool expired() const {
    return armed_ && std::chrono::steady_clock::now() >= tp_;
  }

  /// Seconds left (negative once expired); infinity when unarmed.
  double remaining_s() const;

 private:
  std::chrono::steady_clock::time_point tp_{};
  bool armed_ = false;
};

namespace detail {

/// The calling thread's armed deadline, or null. The parallel runtime reads
/// this when opening a region and installs it on its workers.
const Deadline* active_deadline();

/// Installs `d` (may be null) as the calling thread's deadline, returning
/// the previous value — used by DeadlineScope and the pool workers.
const Deadline* exchange_active_deadline(const Deadline* d);

[[noreturn]] void deadline_exceeded(const char* where);

}  // namespace detail

/// Arms `deadline` for the calling thread for the scope's lifetime. Scopes
/// nest: an inner scope with a later deadline does not extend an outer one
/// (the effective deadline is the earlier of the two).
class DeadlineScope {
 public:
  explicit DeadlineScope(const Deadline& deadline);
  ~DeadlineScope();
  DeadlineScope(const DeadlineScope&) = delete;
  DeadlineScope& operator=(const DeadlineScope&) = delete;

 private:
  Deadline effective_;
  const Deadline* prev_;
};

/// Cooperative cancellation point: throws Error(kDeadlineExceeded) naming
/// `where` when the armed deadline has passed; a thread-local null test when
/// nothing is armed.
inline void deadline_poll(const char* where) {
  const Deadline* d = detail::active_deadline();
  if (d != nullptr && d->expired()) {
    detail::deadline_exceeded(where);
  }
}

}  // namespace tdc
