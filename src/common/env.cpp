#include "common/env.h"

#include "common/annotations.h"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <string>

namespace tdc {

namespace {

std::string_view trim_ascii_space(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

}  // namespace

std::optional<std::int64_t> parse_int_strict(std::string_view text) {
  text = trim_ascii_space(text);
  if (!text.empty() && text.front() == '+') {
    text.remove_prefix(1);  // from_chars rejects an explicit plus
    if (!text.empty() && text.front() == '-') {
      return std::nullopt;  // "+-3"
    }
  }
  if (text.empty()) {
    return std::nullopt;
  }
  std::int64_t value = 0;
  const auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value, 10);
  if (ec != std::errc{} || end != text.data() + text.size()) {
    return std::nullopt;  // trailing garbage ("8x") or out of range
  }
  return value;
}

void env_warn_invalid(const char* name, std::string_view text) {
  // One warning per variable per process: a misconfigured fleet logs the
  // typo once at first use, then runs on the documented default.
  //
  // Reachable from the run path only through num_threads()'s once-per-
  // process resolution, and even there only when a variable is malformed —
  // the lock, the warned-set insert and the stderr write never execute in
  // steady-state serving.
  TDC_ANALYZE_ALLOW(run-path-lock);
  TDC_ANALYZE_ALLOW(run-path-alloc);
  TDC_ANALYZE_ALLOW(run-path-io);
  static std::mutex mu;
  static std::set<std::string>* warned = nullptr;
  std::lock_guard<std::mutex> lock(mu);
  if (warned == nullptr) {
    // Intentionally leaked (exit-safe); cold by the warn-once gate.
    warned = new std::set<std::string>();  // tdc-lint: allow(run-path-alloc)
  }
  // tdc-lint: allow(run-path-alloc) — once per misconfigured variable.
  if (!warned->insert(std::string(name)).second) {
    return;
  }
  std::fprintf(stderr,
               "tdc: ignoring malformed %s=\"%.*s\" (expected an integer); "
               "using the default\n",
               name, static_cast<int>(text.size()), text.data());
}

std::optional<std::int64_t> env_int(const char* name, std::int64_t min,
                                    std::int64_t max) {
  const char* env = std::getenv(name);
  if (env == nullptr) {
    return std::nullopt;
  }
  const std::optional<std::int64_t> v = parse_int_strict(env);
  if (!v.has_value() || *v < min || *v > max) {
    env_warn_invalid(name, env);
    return std::nullopt;
  }
  return v;
}

}  // namespace tdc
