// Lightweight runtime-contract checking used across the library.
//
// TDC_CHECK is always on (it guards API contracts such as shape agreement);
// violations throw tdc::Error so callers and tests can observe them without
// aborting the process.
#pragma once

#include <stdexcept>
#include <string>

namespace tdc {

/// Exception thrown on any violated library precondition or invariant.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message);
}  // namespace detail

}  // namespace tdc

#define TDC_CHECK(expr)                                                \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::tdc::detail::check_failed(#expr, __FILE__, __LINE__, "");      \
    }                                                                  \
  } while (0)

#define TDC_CHECK_MSG(expr, msg)                                       \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::tdc::detail::check_failed(#expr, __FILE__, __LINE__, (msg));   \
    }                                                                  \
  } while (0)
