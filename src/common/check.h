// Lightweight runtime-contract checking used across the library.
//
// TDC_CHECK is always on (it guards API contracts such as shape agreement);
// violations throw tdc::Error so callers and tests can observe them without
// aborting the process. Every Error carries an ErrorCode so serving-tier
// callers can map failures to a retry/reject/abort policy without parsing
// message strings.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace tdc {

/// Failure taxonomy of every tdc::Error the library throws. Callers branch on
/// the code, never on the message text.
enum class ErrorCode {
  kInvalidArgument,    ///< malformed descriptor/operand (caller error; retrying
                       ///  the same call cannot succeed)
  kResourceExhausted,  ///< an allocation the operation needed failed; may
                       ///  succeed later or with a smaller request
  kDeadlineExceeded,   ///< the run's Deadline expired at a cooperative
                       ///  cancellation point; state is reusable
  kDataCorruption,     ///< data failed an integrity check (non-finite kernel
                       ///  output, bad cache-file checksum)
  kInternal,           ///< violated library invariant — a bug, not a caller
                       ///  error
};

/// Stable lowercase name of a code ("invalid_argument", ...), for logs.
const char* error_code_name(ErrorCode code);

/// Exception thrown on any violated library precondition or invariant.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what,
                 ErrorCode code = ErrorCode::kInternal)
      : std::runtime_error(what), code_(code) {}

  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

/// True when non-finite activation screening is on: TDC_CHECK_FINITE=1 in the
/// environment (read once) or set_check_finite(true). Checked entry points
/// (InferenceSession::run/run_batched) then reject non-finite inputs with
/// kInvalidArgument and raise kDataCorruption when an op writes non-finite
/// output. Off by default — the scan reads every activation element.
bool check_finite_enabled();

/// Programmatic override of TDC_CHECK_FINITE (tests, serving config).
void set_check_finite(bool on);

/// True when every element of [data, data + n) is finite.
bool all_finite(const float* data, std::int64_t n);

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message,
                               ErrorCode code = ErrorCode::kInvalidArgument);
}  // namespace detail

/// Runs f(), translating std::bad_alloc into Error(kResourceExhausted) with
/// `context` naming the operation that was starved. Wraps the entry points
/// that allocate on behalf of the caller (plan compilation, convenience
/// workspaces) so out-of-memory surfaces as a typed, recoverable error.
template <class F>
decltype(auto) map_resource_failure(const char* context, F&& f) {
  try {
    return std::forward<F>(f)();
  } catch (const std::bad_alloc&) {
    throw Error(std::string(context) +
                    ": allocation failed (resource exhausted)",
                ErrorCode::kResourceExhausted);
  }
}

}  // namespace tdc

#define TDC_CHECK(expr)                                                \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::tdc::detail::check_failed(#expr, __FILE__, __LINE__, "");      \
    }                                                                  \
  } while (0)

#define TDC_CHECK_MSG(expr, msg)                                       \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::tdc::detail::check_failed(#expr, __FILE__, __LINE__, (msg));   \
    }                                                                  \
  } while (0)

// Invariant (not precondition) form: failures are library bugs and carry
// ErrorCode::kInternal.
#define TDC_CHECK_INTERNAL(expr, msg)                                  \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::tdc::detail::check_failed(#expr, __FILE__, __LINE__, (msg),    \
                                  ::tdc::ErrorCode::kInternal);        \
    }                                                                  \
  } while (0)
