// Strict environment-variable parsing shared by every integer knob.
//
// The runtime's env knobs (TDC_NUM_THREADS, TDC_INTER_OP, TDC_INTRA_OP, the
// TDC_FAULT skip/count fields) used to go through bare strtol with a null
// endptr, so TDC_NUM_THREADS=abc silently resolved to 0-and-fallback and
// TDC_NUM_THREADS=8x silently resolved to 8 — a deployment typo configured
// the process without a trace. This header is the one strict parser they all
// route through: the full text must be one integer (optional sign, decimal,
// no trailing garbage), the value must fit the caller's range, and a reject
// warns once per variable on stderr before the caller falls back to its
// documented default.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace tdc {

/// Strict integer parse of `text`: optional leading/trailing ASCII
/// whitespace, optional sign, decimal digits, nothing else. Returns nullopt
/// on empty input, trailing garbage, or out-of-range values.
std::optional<std::int64_t> parse_int_strict(std::string_view text);

/// Reads integer environment variable `name`. Unset returns nullopt
/// silently; set-but-malformed (parse failure or outside [min, max]) returns
/// nullopt after a one-shot stderr warning naming the variable and the
/// rejected text (one warning per variable per process, so a misconfigured
/// fleet logs once, not once per query).
std::optional<std::int64_t> env_int(
    const char* name, std::int64_t min = INT64_MIN,
    std::int64_t max = INT64_MAX);

/// The one-shot warning used by env_int, exposed for knobs that parse
/// structured values themselves (TDC_FAULT's skip/count fields): warns that
/// `name` holds the malformed `text`, at most once per name per process.
void env_warn_invalid(const char* name, std::string_view text);

}  // namespace tdc
