#include "conv/conv_shape.h"

#include <sstream>

namespace tdc {

std::string ConvShape::to_string() const {
  std::ostringstream os;
  os << "(C=" << c << ", N=" << n << ", H=" << h << ", W=" << w << ", R=" << r
     << ", S=" << s;
  if (pad_h != 0 || pad_w != 0) {
    os << ", pad=" << pad_h << "x" << pad_w;
  }
  if (stride_h != 1 || stride_w != 1) {
    os << ", stride=" << stride_h << "x" << stride_w;
  }
  if (batch != 1) {
    os << ", batch=" << batch;
  }
  os << ")";
  return os.str();
}

}  // namespace tdc
