// Winograd F(2×2, 3×3) convolution — the cuDNN WINOGRAD stand-in.
//
// Standard minimal-filtering formulation (Lavin & Gray, 2016):
//   Y_tile = A^T [ (G g G^T) ⊙ (B^T d B) ] A
// with 4×4 input tiles d, 3×3 filters g, 2×2 output tiles, and the classic
// constant matrices B, G, A. Channel accumulation happens in the transform
// domain, which is where the arithmetic saving (2.25× fewer multiplies)
// comes from.
#include <array>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "conv/conv.h"

namespace tdc {

namespace {

using Tile4 = std::array<std::array<double, 4>, 4>;

// B^T d B for a 4×4 data tile.
Tile4 input_transform(const Tile4& d) {
  // B^T = [1  0 -1  0; 0  1  1  0; 0 -1  1  0; 0  1  0 -1]
  Tile4 t{};  // t = B^T d
  for (int j = 0; j < 4; ++j) {
    t[0][j] = d[0][j] - d[2][j];
    t[1][j] = d[1][j] + d[2][j];
    t[2][j] = d[2][j] - d[1][j];
    t[3][j] = d[1][j] - d[3][j];
  }
  Tile4 u{};  // u = t B
  for (int i = 0; i < 4; ++i) {
    u[i][0] = t[i][0] - t[i][2];
    u[i][1] = t[i][1] + t[i][2];
    u[i][2] = t[i][2] - t[i][1];
    u[i][3] = t[i][1] - t[i][3];
  }
  return u;
}

// G g G^T for a 3×3 filter.
Tile4 filter_transform(const std::array<std::array<double, 3>, 3>& g) {
  // G = [1 0 0; 1/2 1/2 1/2; 1/2 -1/2 1/2; 0 0 1]
  std::array<std::array<double, 3>, 4> t{};  // t = G g
  for (int j = 0; j < 3; ++j) {
    t[0][j] = g[0][j];
    t[1][j] = 0.5 * (g[0][j] + g[1][j] + g[2][j]);
    t[2][j] = 0.5 * (g[0][j] - g[1][j] + g[2][j]);
    t[3][j] = g[2][j];
  }
  Tile4 u{};  // u = t G^T
  for (int i = 0; i < 4; ++i) {
    u[i][0] = t[i][0];
    u[i][1] = 0.5 * (t[i][0] + t[i][1] + t[i][2]);
    u[i][2] = 0.5 * (t[i][0] - t[i][1] + t[i][2]);
    u[i][3] = t[i][2];
  }
  return u;
}

// A^T m A for the accumulated 4×4 transform-domain tile -> 2×2 output.
std::array<std::array<double, 2>, 2> output_transform(const Tile4& m) {
  // A^T = [1 1 1 0; 0 1 -1 -1]
  std::array<std::array<double, 4>, 2> t{};  // t = A^T m
  for (int j = 0; j < 4; ++j) {
    t[0][j] = m[0][j] + m[1][j] + m[2][j];
    t[1][j] = m[1][j] - m[2][j] - m[3][j];
  }
  std::array<std::array<double, 2>, 2> y{};
  for (int i = 0; i < 2; ++i) {
    y[i][0] = t[i][0] + t[i][1] + t[i][2];
    y[i][1] = t[i][1] - t[i][2] - t[i][3];
  }
  return y;
}

}  // namespace

Tensor conv2d_winograd(const Tensor& x, const Tensor& kernel_cnrs,
                       const ConvShape& shape) {
  TDC_CHECK_MSG(conv_algo_supports(ConvAlgo::kWinograd, shape),
                "winograd requires a 3x3 stride-1 problem: " + shape.to_string());
  TDC_CHECK_MSG(x.rank() == 3 && kernel_cnrs.rank() == 4, "bad operand ranks");

  const std::int64_t oh = shape.out_h();
  const std::int64_t ow = shape.out_w();
  const Tensor xp = pad_chw(x, shape.pad_h, shape.pad_w);
  const std::int64_t ph = xp.dim(1);
  const std::int64_t pw = xp.dim(2);

  // Tile counts over the output plane (2×2 outputs per tile).
  const std::int64_t tiles_h = (oh + 1) / 2;
  const std::int64_t tiles_w = (ow + 1) / 2;

  // Precompute all filter transforms: [C, N] tiles of 4×4.
  std::vector<Tile4> uk(static_cast<std::size_t>(shape.c * shape.n));
  for (std::int64_t c = 0; c < shape.c; ++c) {
    for (std::int64_t n = 0; n < shape.n; ++n) {
      std::array<std::array<double, 3>, 3> g{};
      for (int r = 0; r < 3; ++r) {
        for (int s = 0; s < 3; ++s) {
          g[static_cast<std::size_t>(r)][static_cast<std::size_t>(s)] =
              static_cast<double>(kernel_cnrs(c, n, r, s));
        }
      }
      uk[static_cast<std::size_t>(c * shape.n + n)] = filter_transform(g);
    }
  }

  Tensor y({shape.n, oh, ow});

  // Flattened (th, tw) tile index; every tile writes a disjoint 2×2 output
  // patch, so the loop is embarrassingly parallel.
  parallel_for(0, tiles_h * tiles_w, 1,
               [&](std::int64_t t0, std::int64_t t1) {
    for (std::int64_t tile_id = t0; tile_id < t1; ++tile_id) {
      const std::int64_t th = tile_id / tiles_w;
      const std::int64_t tw = tile_id % tiles_w;
      // Transform the C input tiles for this spatial position once.
      std::vector<Tile4> ux(static_cast<std::size_t>(shape.c));
      for (std::int64_t c = 0; c < shape.c; ++c) {
        Tile4 d{};
        for (int i = 0; i < 4; ++i) {
          for (int j = 0; j < 4; ++j) {
            const std::int64_t ih = th * 2 + i;
            const std::int64_t iw = tw * 2 + j;
            d[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
                (ih < ph && iw < pw) ? static_cast<double>(xp(c, ih, iw)) : 0.0;
          }
        }
        ux[static_cast<std::size_t>(c)] = input_transform(d);
      }

      for (std::int64_t n = 0; n < shape.n; ++n) {
        Tile4 m{};
        for (std::int64_t c = 0; c < shape.c; ++c) {
          const Tile4& a = ux[static_cast<std::size_t>(c)];
          const Tile4& b = uk[static_cast<std::size_t>(c * shape.n + n)];
          for (int i = 0; i < 4; ++i) {
            for (int j = 0; j < 4; ++j) {
              m[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] +=
                  a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] *
                  b[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
            }
          }
        }
        const auto out = output_transform(m);
        for (int i = 0; i < 2; ++i) {
          for (int j = 0; j < 2; ++j) {
            const std::int64_t o_h = th * 2 + i;
            const std::int64_t o_w = tw * 2 + j;
            if (o_h < oh && o_w < ow) {
              y(n, o_h, o_w) = static_cast<float>(
                  out[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]);
            }
          }
        }
      }
    }
  });
  return y;
}

}  // namespace tdc
