// Convolution problem descriptor.
//
// The paper's notation (Table 1): C input channels, N output channels,
// H×W input image, R×S filter. Batch size is 1 throughout the paper's
// evaluation; the substrate supports padding and stride for the full model
// inventories (7×7/2 stems, strided stage transitions).
#pragma once

#include <cstdint>
#include <string>

namespace tdc {

struct ConvShape {
  std::int64_t c = 1;       ///< input channels
  std::int64_t n = 1;       ///< output channels
  std::int64_t h = 1;       ///< input height
  std::int64_t w = 1;       ///< input width
  std::int64_t r = 1;       ///< filter height
  std::int64_t s = 1;       ///< filter width
  std::int64_t pad_h = 0;   ///< zero padding (both sides), vertical
  std::int64_t pad_w = 0;   ///< zero padding (both sides), horizontal
  std::int64_t stride_h = 1;
  std::int64_t stride_w = 1;
  /// Inference batch. The paper evaluates batch 1 throughout; the cost
  /// models accept larger batches for the batch-sensitivity extension
  /// (bench_extension_batch). Functional executors remain single-image.
  std::int64_t batch = 1;

  std::int64_t out_h() const {
    return (h + 2 * pad_h - r) / stride_h + 1;
  }
  std::int64_t out_w() const {
    return (w + 2 * pad_w - s) / stride_w + 1;
  }

  /// Multiply–add count ×2 (the usual FLOPs convention), whole batch.
  double flops() const {
    return 2.0 * static_cast<double>(batch) * static_cast<double>(out_h()) *
           static_cast<double>(out_w()) * static_cast<double>(n) *
           static_cast<double>(c) * static_cast<double>(r) *
           static_cast<double>(s);
  }

  /// Weight parameter count (no bias).
  double params() const {
    return static_cast<double>(c) * static_cast<double>(n) *
           static_cast<double>(r) * static_cast<double>(s);
  }

  bool valid() const {
    return c >= 1 && n >= 1 && h >= 1 && w >= 1 && r >= 1 && s >= 1 &&
           batch >= 1 && pad_h >= 0 && pad_w >= 0 && stride_h >= 1 &&
           stride_w >= 1 && h + 2 * pad_h >= r && w + 2 * pad_w >= s;
  }

  /// Copy with a different batch size.
  ConvShape with_batch(std::int64_t b) const {
    ConvShape out = *this;
    out.batch = b;
    return out;
  }

  std::string to_string() const;

  /// "Same"-style helper: square filter k×k, stride st, padding k/2.
  static ConvShape same(std::int64_t c, std::int64_t n, std::int64_t hw,
                        std::int64_t k, std::int64_t st = 1) {
    ConvShape cs;
    cs.c = c;
    cs.n = n;
    cs.h = hw;
    cs.w = hw;
    cs.r = k;
    cs.s = k;
    cs.pad_h = k / 2;
    cs.pad_w = k / 2;
    cs.stride_h = st;
    cs.stride_w = st;
    return cs;
  }

  /// Valid (unpadded, stride-1) convolution as in the paper's equations.
  static ConvShape valid_conv(std::int64_t c, std::int64_t n, std::int64_t h,
                              std::int64_t w, std::int64_t r, std::int64_t s) {
    ConvShape cs;
    cs.c = c;
    cs.n = n;
    cs.h = h;
    cs.w = w;
    cs.r = r;
    cs.s = s;
    return cs;
  }

  bool operator==(const ConvShape&) const = default;
};

}  // namespace tdc
