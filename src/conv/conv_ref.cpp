#include <algorithm>

#include "common/check.h"
#include "common/parallel.h"
#include "conv/conv.h"

namespace tdc {

const char* conv_algo_name(ConvAlgo algo) {
  switch (algo) {
    case ConvAlgo::kReference:
      return "reference";
    case ConvAlgo::kIm2col:
      return "im2col-gemm";
    case ConvAlgo::kWinograd:
      return "winograd";
    case ConvAlgo::kFft:
      return "fft";
    case ConvAlgo::kTdcCore:
      return "tdc-core";
    case ConvAlgo::kAuto:
      return "auto";
  }
  return "unknown";
}

bool conv_algo_supports(ConvAlgo algo, const ConvShape& shape) {
  switch (algo) {
    case ConvAlgo::kReference:
    case ConvAlgo::kIm2col:
    case ConvAlgo::kTdcCore:
    case ConvAlgo::kAuto:
      return shape.valid();
    case ConvAlgo::kWinograd:
      return shape.valid() && shape.r == 3 && shape.s == 3 &&
             shape.stride_h == 1 && shape.stride_w == 1;
    case ConvAlgo::kFft:
      return shape.valid() && shape.stride_h == 1 && shape.stride_w == 1;
  }
  return false;
}

Tensor pad_chw(const Tensor& x, std::int64_t pad_h, std::int64_t pad_w) {
  TDC_CHECK_MSG(x.rank() == 3, "pad_chw expects [C,H,W]");
  TDC_CHECK(pad_h >= 0 && pad_w >= 0);
  if (pad_h == 0 && pad_w == 0) {
    return x;
  }
  const std::int64_t c = x.dim(0);
  const std::int64_t h = x.dim(1);
  const std::int64_t w = x.dim(2);
  const std::int64_t pw = w + 2 * pad_w;
  const std::int64_t ph = h + 2 * pad_h;
  Tensor out({c, ph, pw});
  const float* src = x.raw();
  float* dst = out.raw();
  for (std::int64_t ci = 0; ci < c; ++ci) {
    for (std::int64_t hi = 0; hi < h; ++hi) {
      const float* row = src + (ci * h + hi) * w;
      std::copy(row, row + w, dst + (ci * ph + hi + pad_h) * pw + pad_w);
    }
  }
  return out;
}

namespace {

void check_conv_inputs(const Tensor& x, const Tensor& kernel_cnrs,
                       const ConvShape& shape) {
  TDC_CHECK_MSG(shape.valid(), "invalid convolution shape " + shape.to_string());
  TDC_CHECK_MSG(shape.batch == 1,
                "functional convolutions are single-image; batched shapes "
                "are for the cost models");
  TDC_CHECK_MSG(x.rank() == 3, "input must be [C,H,W]");
  TDC_CHECK_MSG(kernel_cnrs.rank() == 4, "kernel must be [C,N,R,S]");
  TDC_CHECK_MSG(x.dim(0) == shape.c && x.dim(1) == shape.h && x.dim(2) == shape.w,
                "input tensor does not match shape descriptor");
  TDC_CHECK_MSG(kernel_cnrs.dim(0) == shape.c && kernel_cnrs.dim(1) == shape.n &&
                    kernel_cnrs.dim(2) == shape.r && kernel_cnrs.dim(3) == shape.s,
                "kernel tensor does not match shape descriptor");
}

}  // namespace

void conv2d_reference_into(const float* x, const Tensor& kernel_cnrs,
                           const ConvShape& shape, float* y) {
  const std::int64_t oh = shape.out_h();
  const std::int64_t ow = shape.out_w();

  parallel_for(0, shape.n, 1, [&](std::int64_t n0, std::int64_t n1) {
    for (std::int64_t n = n0; n < n1; ++n) {
      for (std::int64_t o_h = 0; o_h < oh; ++o_h) {
        for (std::int64_t o_w = 0; o_w < ow; ++o_w) {
          double acc = 0.0;
          for (std::int64_t c = 0; c < shape.c; ++c) {
            for (std::int64_t r = 0; r < shape.r; ++r) {
              const std::int64_t ih = o_h * shape.stride_h - shape.pad_h + r;
              if (ih < 0 || ih >= shape.h) {
                continue;
              }
              for (std::int64_t s = 0; s < shape.s; ++s) {
                const std::int64_t iw = o_w * shape.stride_w - shape.pad_w + s;
                if (iw < 0 || iw >= shape.w) {
                  continue;
                }
                acc += static_cast<double>(x[(c * shape.h + ih) * shape.w + iw]) *
                       static_cast<double>(kernel_cnrs(c, n, r, s));
              }
            }
          }
          y[(n * oh + o_h) * ow + o_w] = static_cast<float>(acc);
        }
      }
    }
  });
}

Tensor conv2d_reference(const Tensor& x, const Tensor& kernel_cnrs,
                        const ConvShape& shape) {
  check_conv_inputs(x, kernel_cnrs, shape);
  Tensor y({shape.n, shape.out_h(), shape.out_w()});
  conv2d_reference_into(x.raw(), kernel_cnrs, shape, y.raw());
  return y;
}

}  // namespace tdc
