// Convolution algorithms (single image, CHW activations, CNRS kernels).
//
// These implement the baselines the paper compares against:
//   conv2d_im2col   — stand-in for cuDNN IMPLICIT_GEMM
//   conv2d_winograd — stand-in for cuDNN WINOGRAD (F(2×2, 3×3))
//   conv2d_fft      — stand-in for cuDNN FFT
// plus the exact reference used as the correctness oracle for every other
// kernel in the repository (including the TDC core kernel in src/core).
//
// Every free function here is a thin single-shot wrapper over the
// plan/execute API in exec/conv_plan.h: it compiles a ConvPlan for the
// problem, allocates the output and workspace, runs once, and throws the
// plan away. Serving loops should build the plan once and replay it.
//
// All functions compute cross-correlation (the CNN convention):
//   Y(n, oh, ow) = Σ_{c,r,s} X(c, oh·stride − pad + r, ow·stride − pad + s) · K(c,n,r,s)
#pragma once

#include "conv/conv_shape.h"
#include "tensor/tensor.h"

namespace tdc {

/// Identifiers for dispatching a core-convolution implementation.
///  * kReference/kIm2col/kWinograd/kFft — the library baselines;
///  * kTdcCore — the paper's core kernel scheme (functional executor);
///  * kAuto    — resolved at plan-compile time by the selector in
///               exec/conv_plan.h, which consults conv_algo_supports and the
///               gpusim/library cost models.
enum class ConvAlgo { kReference, kIm2col, kWinograd, kFft, kTdcCore, kAuto };

const char* conv_algo_name(ConvAlgo algo);

/// Exact direct convolution; the correctness oracle. X is [C, H, W],
/// kernel is CNRS [C, N, R, S]; returns [N, H', W'].
Tensor conv2d_reference(const Tensor& x, const Tensor& kernel_cnrs,
                        const ConvShape& shape);

/// Reference convolution into a caller-provided [N, H', W'] buffer (every
/// element is written). Operands are not shape-checked; used by the plan
/// layer after it has validated them once at compile time.
void conv2d_reference_into(const float* x, const Tensor& kernel_cnrs,
                           const ConvShape& shape, float* y);

/// im2col + GEMM convolution.
Tensor conv2d_im2col(const Tensor& x, const Tensor& kernel_cnrs,
                     const ConvShape& shape);

/// The [N, C·R·S] weight-matrix reshape shared by the im2col path and the
/// fused Tucker pipeline: row n holds kernel(., n, ., .) flattened in
/// im2col's (c, r, s) patch-row order.
Tensor conv_weight_matrix(const Tensor& kernel_cnrs, const ConvShape& shape);

/// Winograd F(2×2, 3×3). Requires r == s == 3 and stride 1 (throws otherwise).
Tensor conv2d_winograd(const Tensor& x, const Tensor& kernel_cnrs,
                       const ConvShape& shape);

/// FFT convolution (frequency-domain channel accumulation). Requires
/// stride 1 (throws otherwise); any filter size.
Tensor conv2d_fft(const Tensor& x, const Tensor& kernel_cnrs,
                  const ConvShape& shape);

/// Dispatch by algorithm id (kAuto picks the cheapest supported algorithm on
/// the default device). Algorithms with shape restrictions throw on
/// unsupported shapes; use conv_algo_supports to pre-check.
Tensor conv2d(ConvAlgo algo, const Tensor& x, const Tensor& kernel_cnrs,
              const ConvShape& shape);

/// Whether `algo` supports `shape` (Winograd: 3×3 stride-1; FFT: stride-1;
/// reference/im2col/TDC-core/auto: any valid shape).
bool conv_algo_supports(ConvAlgo algo, const ConvShape& shape);

/// Zero-pad a CHW image by (pad_h, pad_w) on each border.
Tensor pad_chw(const Tensor& x, std::int64_t pad_h, std::int64_t pad_w);

/// im2col buffer: [C·R·S, H'·W'] patch matrix for the given problem.
Tensor im2col(const Tensor& x, const ConvShape& shape);

/// im2col into a caller-provided [C·R·S, H'·W'] buffer (every element is
/// written); `x` is a flat [C, H, W] image.
void im2col_into(const float* x, const ConvShape& shape, float* cols);

/// Quantized-domain im2col for the int8 serving path: same patch-row
/// flattening as im2col_into over a uint8 [C, H, W] image, except border
/// taps are filled with `pad_value` — the activation zero point, i.e. the
/// quantized encoding of fp32 0.0 — so the padding of a quantized plan
/// dequantizes to exactly the zeros of the fp32 plan.
void im2col_u8_into(const std::uint8_t* x, const ConvShape& shape,
                    std::uint8_t* cols, std::uint8_t pad_value);

}  // namespace tdc
