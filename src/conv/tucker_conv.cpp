#include "conv/tucker_conv.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "conv/pointwise.h"
#include "linalg/gemm.h"

namespace tdc {

Tensor tucker_conv_stage1(const Tensor& x, const TuckerFactors& factors) {
  return pointwise_conv(x, factors.u1);
}

Tensor tucker_conv_stage3(const Tensor& z2, const TuckerFactors& factors) {
  // U2 is [N, D2]; mapping D2 → N needs the [D2, N] transpose.
  return pointwise_conv(z2, transpose2d(factors.u2));
}

Tensor tucker_conv(const Tensor& x, const TuckerFactors& factors,
                   const ConvShape& shape, ConvAlgo core_algo) {
  TDC_CHECK_MSG(x.rank() == 3, "tucker_conv expects [C,H,W]");
  TDC_CHECK_MSG(x.dim(0) == shape.c, "input channel mismatch");
  TDC_CHECK_MSG(factors.u1.dim(0) == shape.c, "U1 row count != C");
  TDC_CHECK_MSG(factors.u2.dim(0) == shape.n, "U2 row count != N");

  const TuckerRanks ranks = factors.ranks();
  const ConvShape core = core_conv_shape(shape, ranks);

  const Tensor z1 = tucker_conv_stage1(x, factors);
  const Tensor z2 = conv2d(core_algo, z1, factors.core, core);
  return tucker_conv_stage3(z2, factors);
}

namespace {

// Reusable per-image workspace of the fused pipeline; every buffer is
// band-sized, never plane-sized.
struct FusedScratch {
  std::vector<float> z1_slab;  // [D1, slab_h·W] stage-1 band
  std::vector<float> cols;     // [D1·R·S, band_oh·OW] core patch matrix
  std::vector<float> z2_band;  // [D2, band_oh·OW]
};

// Output-row band height targeting a cache-resident patch matrix
// (the largest scratch buffer) of at most ~1 MiB.
std::int64_t auto_row_tile(const ConvShape& core, std::int64_t oh) {
  const std::int64_t patch_row_bytes = core.c * core.r * core.s * core.out_w() * 4;
  const std::int64_t budget = std::int64_t{1} << 20;
  return std::clamp<std::int64_t>(budget / std::max<std::int64_t>(patch_row_bytes, 1),
                                  1, oh);
}

// One image: x ([C, H, W] flat) → y ([N, OH, OW] flat).
void fused_image(const float* x, const TuckerFactors& factors,
                 const ConvShape& shape, const ConvShape& core,
                 std::span<const float> core_weights, std::int64_t row_tile,
                 float* y, FusedScratch& scratch) {
  const TuckerRanks ranks = factors.ranks();
  const std::int64_t oh = shape.out_h();
  const std::int64_t ow = shape.out_w();
  const std::int64_t w = shape.w;
  const std::int64_t crs = ranks.d1 * core.r * core.s;

  for (std::int64_t oh0 = 0; oh0 < oh; oh0 += row_tile) {
    const std::int64_t band_oh = std::min(row_tile, oh - oh0);
    const std::int64_t hw_band = band_oh * ow;
    // Input rows the core convolution touches for this band; rows outside
    // [0, H) are the zero padding of the core stage, and the stage-1
    // pointwise maps zero rows to zero rows.
    const std::int64_t ih0 = oh0 * core.stride_h - core.pad_h;
    const std::int64_t slab_h = (band_oh - 1) * core.stride_h + core.r;
    const std::int64_t slab_hw = slab_h * w;
    const std::int64_t valid_lo = std::max<std::int64_t>(ih0, 0);
    const std::int64_t valid_hi = std::min(ih0 + slab_h, shape.h);
    const std::int64_t pad_lo = (valid_lo - ih0) * w;   // leading zero cols
    const std::int64_t pad_hi =
        (ih0 + slab_h - std::max(valid_hi, valid_lo)) * w;  // trailing

    // Stage 1 on the slab only: Z1[D1, slab] = U1^T · X[C, slab]. The input
    // row slab is read in place through the channel stride H·W; only the
    // padding rows are filled by hand.
    scratch.z1_slab.resize(static_cast<std::size_t>(ranks.d1 * slab_hw));
    for (std::int64_t d1 = 0; d1 < ranks.d1; ++d1) {
      float* row = scratch.z1_slab.data() + d1 * slab_hw;
      std::fill(row, row + pad_lo, 0.0f);
      std::fill(row + slab_hw - pad_hi, row + slab_hw, 0.0f);
    }
    if (valid_hi > valid_lo) {
      gemm_strided(ranks.d1, (valid_hi - valid_lo) * w, shape.c,
                   /*a=*/factors.u1.raw(), /*a_rs=*/1, /*a_cs=*/ranks.d1,
                   /*b=*/x + valid_lo * w, /*b_rs=*/shape.h * w, /*b_cs=*/1,
                   /*c=*/scratch.z1_slab.data() + pad_lo, /*ldc=*/slab_hw);
    }

    // Patch matrix of the band (im2col over the slab; pad_h is already
    // folded into the slab's zero rows, pad_w is applied here).
    scratch.cols.resize(static_cast<std::size_t>(crs * hw_band));
    for (std::int64_t row = 0; row < crs; ++row) {
      const std::int64_t d1 = row / (core.r * core.s);
      const std::int64_t r = (row / core.s) % core.r;
      const std::int64_t s = row % core.s;
      const float* plane = scratch.z1_slab.data() + d1 * slab_hw;
      float* out_row = scratch.cols.data() + row * hw_band;
      for (std::int64_t b_h = 0; b_h < band_oh; ++b_h) {
        const std::int64_t lh = b_h * core.stride_h + r;
        const float* in_row = plane + lh * w;
        float* out = out_row + b_h * ow;
        for (std::int64_t o_w = 0; o_w < ow; ++o_w) {
          const std::int64_t iw = o_w * core.stride_w - core.pad_w + s;
          out[o_w] = (iw >= 0 && iw < w) ? in_row[iw] : 0.0f;
        }
      }
    }

    // Core stage: Z2[D2, band] = Wcore[D2, D1·R·S] · cols.
    scratch.z2_band.resize(static_cast<std::size_t>(ranks.d2 * hw_band));
    gemm(ranks.d2, hw_band, crs, core_weights, scratch.cols, scratch.z2_band);

    // Stage 3: Y[N, band] = U2[N, D2] · Z2, committed straight into the
    // output's row band through the plane stride OH·OW.
    gemm_strided(shape.n, hw_band, ranks.d2,
                 /*a=*/factors.u2.raw(), /*a_rs=*/ranks.d2, /*a_cs=*/1,
                 /*b=*/scratch.z2_band.data(), /*b_rs=*/hw_band, /*b_cs=*/1,
                 /*c=*/y + oh0 * ow, /*ldc=*/oh * ow);
  }
}

void check_tucker_inputs(const Tensor& x, const TuckerFactors& factors,
                         const ConvShape& shape, int expect_rank) {
  TDC_CHECK_MSG(x.rank() == expect_rank,
                expect_rank == 3 ? "tucker_conv_fused expects [C,H,W]"
                                 : "tucker_conv_batched expects [B,C,H,W]");
  const int off = expect_rank - 3;
  TDC_CHECK_MSG(x.dim(off) == shape.c && x.dim(off + 1) == shape.h &&
                    x.dim(off + 2) == shape.w,
                "input tensor does not match shape descriptor");
  TDC_CHECK_MSG(factors.u1.dim(0) == shape.c, "U1 row count != C");
  TDC_CHECK_MSG(factors.u2.dim(0) == shape.n, "U2 row count != N");
  TDC_CHECK_MSG(shape.valid(), "invalid convolution shape " + shape.to_string());
}

}  // namespace

Tensor tucker_conv_fused(const Tensor& x, const TuckerFactors& factors,
                         const ConvShape& shape, std::int64_t row_tile) {
  check_tucker_inputs(x, factors, shape, 3);
  const ConvShape core = core_conv_shape(shape, factors.ranks());
  const Tensor core_w = make_im2col_plan(factors.core, core).weights;
  const std::int64_t tile =
      row_tile > 0 ? std::min(row_tile, shape.out_h())
                   : auto_row_tile(core, shape.out_h());

  Tensor y({shape.n, shape.out_h(), shape.out_w()});
  FusedScratch scratch;
  fused_image(x.raw(), factors, shape, core, core_w.data(), tile, y.raw(),
              scratch);
  return y;
}

Tensor tucker_conv_batched(const Tensor& x, const TuckerFactors& factors,
                           const ConvShape& shape, bool fused) {
  check_tucker_inputs(x, factors, shape, 4);
  const std::int64_t batch = x.dim(0);
  const std::int64_t oh = shape.out_h();
  const std::int64_t ow = shape.out_w();
  const ConvShape core = core_conv_shape(shape, factors.ranks());
  // The core-weight reshape and band height are invariants shared by every
  // image; the staged fallback rebuilds its own state per image instead.
  const Tensor core_w =
      fused ? make_im2col_plan(factors.core, core).weights : Tensor();
  const std::int64_t tile = fused ? auto_row_tile(core, oh) : 0;

  Tensor y({batch, shape.n, oh, ow});
  const std::int64_t x_stride = shape.c * shape.h * shape.w;
  const std::int64_t y_stride = shape.n * oh * ow;

  parallel_for(0, batch, 1, [&](std::int64_t b0, std::int64_t b1) {
    FusedScratch scratch;
    for (std::int64_t b = b0; b < b1; ++b) {
      if (fused) {
        fused_image(x.raw() + b * x_stride, factors, shape, core,
                    core_w.data(), tile, y.raw() + b * y_stride, scratch);
      } else {
        Tensor xb({shape.c, shape.h, shape.w});
        std::copy(x.raw() + b * x_stride, x.raw() + (b + 1) * x_stride,
                  xb.raw());
        const Tensor yb = tucker_conv(xb, factors, shape);
        std::copy(yb.raw(), yb.raw() + y_stride, y.raw() + b * y_stride);
      }
    }
  });
  return y;
}

}  // namespace tdc
