#include "conv/tucker_conv.h"

#include "common/check.h"
#include "conv/pointwise.h"
#include "linalg/gemm.h"

namespace tdc {

Tensor tucker_conv_stage1(const Tensor& x, const TuckerFactors& factors) {
  return pointwise_conv(x, factors.u1);
}

Tensor tucker_conv_stage3(const Tensor& z2, const TuckerFactors& factors) {
  // U2 is [N, D2]; mapping D2 → N needs the [D2, N] transpose.
  return pointwise_conv(z2, transpose2d(factors.u2));
}

Tensor tucker_conv(const Tensor& x, const TuckerFactors& factors,
                   const ConvShape& shape, ConvAlgo core_algo) {
  TDC_CHECK_MSG(x.rank() == 3, "tucker_conv expects [C,H,W]");
  TDC_CHECK_MSG(x.dim(0) == shape.c, "input channel mismatch");
  TDC_CHECK_MSG(factors.u1.dim(0) == shape.c, "U1 row count != C");
  TDC_CHECK_MSG(factors.u2.dim(0) == shape.n, "U2 row count != N");

  const TuckerRanks ranks = factors.ranks();
  const ConvShape core = core_conv_shape(shape, ranks);

  const Tensor z1 = tucker_conv_stage1(x, factors);
  const Tensor z2 = conv2d(core_algo, z1, factors.core, core);
  return tucker_conv_stage3(z2, factors);
}

}  // namespace tdc
