#include "conv/pointwise.h"

#include "common/check.h"
#include "linalg/gemm.h"

namespace tdc {

Tensor pointwise_conv(const Tensor& x, const Tensor& u) {
  TDC_CHECK_MSG(x.rank() == 3, "pointwise_conv expects [C,H,W] input");
  TDC_CHECK_MSG(u.rank() == 2, "pointwise_conv expects [C,D] factor");
  TDC_CHECK_MSG(x.dim(0) == u.dim(0), "channel count mismatch");
  const std::int64_t d = u.dim(1);
  const std::int64_t hw = x.dim(1) * x.dim(2);
  Tensor z({d, x.dim(1), x.dim(2)});
  // Z[D, HW] = U^T[D, C] · X[C, HW]; U is stored [C, D], so use gemm_at.
  gemm_at(d, hw, x.dim(0), u.data(), x.data(), z.data());
  return z;
}

void pointwise_conv_prepacked(const PackedGemmA& packed, const float* x,
                              std::int64_t hw, float* z) {
  gemm_prepacked(packed, hw, x, hw, 1, z, hw);
}

}  // namespace tdc
