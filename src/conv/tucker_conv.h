// Tucker-format convolution pipeline (paper Eqs. 2–4, Figure 3).
//
// Executes the three-stage decomposed convolution: a 1×1 channel reduction
// (C → D1), the R×S "core" convolution (D1 → D2) using a selectable
// algorithm, and a 1×1 channel expansion (D2 → N). Mathematically equivalent
// to convolving with the reconstructed kernel.
#pragma once

#include "conv/conv.h"
#include "tucker/flops.h"
#include "tucker/tucker.h"

namespace tdc {

/// Runs the Tucker pipeline on x ([C, H, W]) with decomposed factors and the
/// original problem descriptor `shape` (its pad/stride apply to the core
/// stage). `core_algo` picks the implementation of the middle convolution.
Tensor tucker_conv(const Tensor& x, const TuckerFactors& factors,
                   const ConvShape& shape,
                   ConvAlgo core_algo = ConvAlgo::kIm2col);

/// Stage-1 output Z1 = X ×_C U1 (Eq. 2), exposed for testing/benchmarks.
Tensor tucker_conv_stage1(const Tensor& x, const TuckerFactors& factors);

/// Stage-3 output Y = Z2 ×_{D2} U2^T (Eq. 4).
Tensor tucker_conv_stage3(const Tensor& z2, const TuckerFactors& factors);

/// Fused three-stage pipeline: instead of materializing the full Z1/Z2
/// intermediates, output rows are processed in bands — per band the stage-1
/// pointwise runs only over the input rows the core convolution will touch,
/// the core R×S GEMM consumes the band's patch matrix, and the stage-3
/// pointwise commits straight to the output. All intermediates live in
/// per-band scratch buffers sized to stay cache-resident. `row_tile` is the
/// output-row band height (0 picks one automatically). Numerically identical
/// to the staged pipeline with the im2col core.
///
/// Single-shot wrapper over a TuckerExec::kFused plan (exec/conv_plan.h);
/// serving loops should compile the plan once and replay it.
Tensor tucker_conv_fused(const Tensor& x, const TuckerFactors& factors,
                         const ConvShape& shape, std::int64_t row_tile = 0);

/// Batched serving entry point: x is [B, C, H, W], returns [B, N, H', W'].
/// Images fan out across the parallel runtime; each runs the fused
/// single-image pipeline (or the staged one when fused == false). Wrapper
/// over ConvPlan::run_batched with an internally allocated workspace.
Tensor tucker_conv_batched(const Tensor& x, const TuckerFactors& factors,
                           const ConvShape& shape, bool fused = true);

}  // namespace tdc
