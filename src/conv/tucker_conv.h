// Tucker-format convolution pipeline (paper Eqs. 2–4, Figure 3).
//
// Executes the three-stage decomposed convolution: a 1×1 channel reduction
// (C → D1), the R×S "core" convolution (D1 → D2) using a selectable
// algorithm, and a 1×1 channel expansion (D2 → N). Mathematically equivalent
// to convolving with the reconstructed kernel.
#pragma once

#include "conv/conv.h"
#include "tucker/flops.h"
#include "tucker/tucker.h"

namespace tdc {

/// Runs the Tucker pipeline on x ([C, H, W]) with decomposed factors and the
/// original problem descriptor `shape` (its pad/stride apply to the core
/// stage). `core_algo` picks the implementation of the middle convolution.
Tensor tucker_conv(const Tensor& x, const TuckerFactors& factors,
                   const ConvShape& shape,
                   ConvAlgo core_algo = ConvAlgo::kIm2col);

/// Stage-1 output Z1 = X ×_C U1 (Eq. 2), exposed for testing/benchmarks.
Tensor tucker_conv_stage1(const Tensor& x, const TuckerFactors& factors);

/// Stage-3 output Y = Z2 ×_{D2} U2^T (Eq. 4).
Tensor tucker_conv_stage3(const Tensor& z2, const TuckerFactors& factors);

}  // namespace tdc
