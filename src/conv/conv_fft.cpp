// FFT convolution — the cuDNN FFT stand-in.
//
// Cross-correlation via the correlation theorem: with the image and each
// filter zero-padded to a common power-of-two plane P_h×P_w,
//   corr(x, k)(o) = IFFT( FFT(x) · conj(FFT(k)) )(o)   for o ≤ P − R,
// so the valid outputs are wrap-free as long as P_h ≥ H and P_w ≥ W. Channel
// accumulation happens in the frequency domain: one forward transform per
// input channel, one multiply–accumulate per (c, n) pair, one inverse
// transform per output channel. The padded-plane overhead on small images is
// the very effect that makes cuDNN-FFT the slowest baseline in the paper.
#include <complex>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "conv/conv.h"
#include "fft/fft.h"

namespace tdc {

Tensor conv2d_fft(const Tensor& x, const Tensor& kernel_cnrs,
                  const ConvShape& shape) {
  TDC_CHECK_MSG(conv_algo_supports(ConvAlgo::kFft, shape),
                "fft conv requires stride 1: " + shape.to_string());
  TDC_CHECK_MSG(x.rank() == 3 && kernel_cnrs.rank() == 4, "bad operand ranks");

  const Tensor xp = pad_chw(x, shape.pad_h, shape.pad_w);
  const std::int64_t h = xp.dim(1);
  const std::int64_t w = xp.dim(2);
  const std::int64_t oh = shape.out_h();
  const std::int64_t ow = shape.out_w();
  const std::int64_t fh = next_pow2(h);
  const std::int64_t fw = next_pow2(w);
  const std::int64_t plane = fh * fw;

  using Cpx = std::complex<double>;

  // Forward transforms of all input channels.
  std::vector<std::vector<Cpx>> fx(static_cast<std::size_t>(shape.c));
  parallel_for(0, shape.c, 1, [&](std::int64_t c0, std::int64_t c1) {
    for (std::int64_t c = c0; c < c1; ++c) {
      auto& buf = fx[static_cast<std::size_t>(c)];
      buf.assign(static_cast<std::size_t>(plane), Cpx{});
      for (std::int64_t i = 0; i < h; ++i) {
        for (std::int64_t j = 0; j < w; ++j) {
          buf[static_cast<std::size_t>(i * fw + j)] =
              Cpx(static_cast<double>(xp(c, i, j)), 0.0);
        }
      }
      fft2d_inplace(buf, fh, fw, /*inverse=*/false);
    }
  });

  Tensor y({shape.n, oh, ow});

  parallel_for(0, shape.n, 1, [&](std::int64_t n0, std::int64_t n1) {
    std::vector<Cpx> acc(static_cast<std::size_t>(plane));
    std::vector<Cpx> fk(static_cast<std::size_t>(plane));
    for (std::int64_t n = n0; n < n1; ++n) {
      std::fill(acc.begin(), acc.end(), Cpx{});
      for (std::int64_t c = 0; c < shape.c; ++c) {
        std::fill(fk.begin(), fk.end(), Cpx{});
        for (std::int64_t r = 0; r < shape.r; ++r) {
          for (std::int64_t s = 0; s < shape.s; ++s) {
            fk[static_cast<std::size_t>(r * fw + s)] =
                Cpx(static_cast<double>(kernel_cnrs(c, n, r, s)), 0.0);
          }
        }
        fft2d_inplace(fk, fh, fw, /*inverse=*/false);
        const auto& fxc = fx[static_cast<std::size_t>(c)];
        for (std::int64_t i = 0; i < plane; ++i) {
          acc[static_cast<std::size_t>(i)] +=
              fxc[static_cast<std::size_t>(i)] *
              std::conj(fk[static_cast<std::size_t>(i)]);
        }
      }
      fft2d_inplace(acc, fh, fw, /*inverse=*/true);
      for (std::int64_t o_h = 0; o_h < oh; ++o_h) {
        for (std::int64_t o_w = 0; o_w < ow; ++o_w) {
          y(n, o_h, o_w) = static_cast<float>(
              acc[static_cast<std::size_t>(o_h * fw + o_w)].real());
        }
      }
    }
  });
  return y;
}

}  // namespace tdc
