#include <algorithm>

#include "common/check.h"
#include "common/parallel.h"
#include "conv/conv.h"

namespace tdc {

void im2col_into(const float* x, const ConvShape& shape, float* cols) {
  const std::int64_t oh = shape.out_h();
  const std::int64_t ow = shape.out_w();

  // Each (c, r, s) patch row is independent; parallelize over the flattened
  // row index.
  parallel_for(0, shape.c * shape.r * shape.s, 1,
               [&](std::int64_t row0, std::int64_t row1) {
    for (std::int64_t row = row0; row < row1; ++row) {
      const std::int64_t c = row / (shape.r * shape.s);
      const std::int64_t r = (row / shape.s) % shape.r;
      const std::int64_t s = row % shape.s;
      const float* plane = x + c * shape.h * shape.w;
      float* out_row = cols + row * oh * ow;
      for (std::int64_t o_h = 0; o_h < oh; ++o_h) {
        const std::int64_t ih = o_h * shape.stride_h - shape.pad_h + r;
        float* out = out_row + o_h * ow;
        if (ih < 0 || ih >= shape.h) {
          std::fill(out, out + ow, 0.0f);
          continue;
        }
        const float* in_row = plane + ih * shape.w;
        for (std::int64_t o_w = 0; o_w < ow; ++o_w) {
          const std::int64_t iw = o_w * shape.stride_w - shape.pad_w + s;
          out[o_w] = (iw >= 0 && iw < shape.w) ? in_row[iw] : 0.0f;
        }
      }
    }
  });
}

void im2col_u8_into(const std::uint8_t* x, const ConvShape& shape,
                    std::uint8_t* cols, std::uint8_t pad_value) {
  const std::int64_t oh = shape.out_h();
  const std::int64_t ow = shape.out_w();

  // Mirrors the fp32 walk above; border taps carry the activation zero
  // point instead of 0.0f so they dequantize to the fp32 path's zeros.
  parallel_for(0, shape.c * shape.r * shape.s, 1,
               [&](std::int64_t row0, std::int64_t row1) {
    for (std::int64_t row = row0; row < row1; ++row) {
      const std::int64_t c = row / (shape.r * shape.s);
      const std::int64_t r = (row / shape.s) % shape.r;
      const std::int64_t s = row % shape.s;
      const std::uint8_t* plane = x + c * shape.h * shape.w;
      std::uint8_t* out_row = cols + row * oh * ow;
      for (std::int64_t o_h = 0; o_h < oh; ++o_h) {
        const std::int64_t ih = o_h * shape.stride_h - shape.pad_h + r;
        std::uint8_t* out = out_row + o_h * ow;
        if (ih < 0 || ih >= shape.h) {
          std::fill(out, out + ow, pad_value);
          continue;
        }
        const std::uint8_t* in_row = plane + ih * shape.w;
        for (std::int64_t o_w = 0; o_w < ow; ++o_w) {
          const std::int64_t iw = o_w * shape.stride_w - shape.pad_w + s;
          out[o_w] = (iw >= 0 && iw < shape.w) ? in_row[iw] : pad_value;
        }
      }
    }
  });
}

Tensor im2col(const Tensor& x, const ConvShape& shape) {
  TDC_CHECK_MSG(x.rank() == 3, "im2col expects [C,H,W]");
  Tensor cols({shape.c * shape.r * shape.s, shape.out_h() * shape.out_w()});
  im2col_into(x.raw(), shape, cols.raw());
  return cols;
}

Tensor conv_weight_matrix(const Tensor& kernel_cnrs, const ConvShape& shape) {
  TDC_CHECK_MSG(kernel_cnrs.rank() == 4, "kernel must be [C,N,R,S]");
  TDC_CHECK_MSG(kernel_cnrs.dim(0) == shape.c && kernel_cnrs.dim(1) == shape.n &&
                    kernel_cnrs.dim(2) == shape.r && kernel_cnrs.dim(3) == shape.s,
                "kernel tensor does not match shape descriptor");
  // Weight matrix A: [N, C·R·S] with the same (c, r, s) row flattening that
  // im2col uses for its patch rows.
  Tensor weights({shape.n, shape.c * shape.r * shape.s});
  for (std::int64_t n = 0; n < shape.n; ++n) {
    for (std::int64_t c = 0; c < shape.c; ++c) {
      for (std::int64_t r = 0; r < shape.r; ++r) {
        for (std::int64_t s = 0; s < shape.s; ++s) {
          weights(n, (c * shape.r + r) * shape.s + s) = kernel_cnrs(c, n, r, s);
        }
      }
    }
  }
  return weights;
}

}  // namespace tdc
