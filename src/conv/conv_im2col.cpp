#include "common/check.h"
#include "conv/conv.h"
#include "linalg/gemm.h"

namespace tdc {

Tensor im2col(const Tensor& x, const ConvShape& shape) {
  TDC_CHECK_MSG(x.rank() == 3, "im2col expects [C,H,W]");
  const std::int64_t oh = shape.out_h();
  const std::int64_t ow = shape.out_w();
  Tensor cols({shape.c * shape.r * shape.s, oh * ow});
  for (std::int64_t c = 0; c < shape.c; ++c) {
    for (std::int64_t r = 0; r < shape.r; ++r) {
      for (std::int64_t s = 0; s < shape.s; ++s) {
        const std::int64_t row = (c * shape.r + r) * shape.s + s;
        for (std::int64_t o_h = 0; o_h < oh; ++o_h) {
          const std::int64_t ih = o_h * shape.stride_h - shape.pad_h + r;
          for (std::int64_t o_w = 0; o_w < ow; ++o_w) {
            const std::int64_t iw = o_w * shape.stride_w - shape.pad_w + s;
            const bool inside = ih >= 0 && ih < shape.h && iw >= 0 && iw < shape.w;
            cols(row, o_h * ow + o_w) = inside ? x(c, ih, iw) : 0.0f;
          }
        }
      }
    }
  }
  return cols;
}

Tensor conv2d_im2col(const Tensor& x, const Tensor& kernel_cnrs,
                     const ConvShape& shape) {
  TDC_CHECK_MSG(kernel_cnrs.rank() == 4, "kernel must be [C,N,R,S]");
  const std::int64_t oh = shape.out_h();
  const std::int64_t ow = shape.out_w();

  // Weight matrix A: [N, C·R·S] with the same (c, r, s) row flattening that
  // im2col uses for its patch rows.
  Tensor a({shape.n, shape.c * shape.r * shape.s});
  for (std::int64_t c = 0; c < shape.c; ++c) {
    for (std::int64_t n = 0; n < shape.n; ++n) {
      for (std::int64_t r = 0; r < shape.r; ++r) {
        for (std::int64_t s = 0; s < shape.s; ++s) {
          a(n, (c * shape.r + r) * shape.s + s) = kernel_cnrs(c, n, r, s);
        }
      }
    }
  }

  const Tensor cols = im2col(x, shape);
  Tensor y({shape.n, oh, ow});
  gemm(shape.n, oh * ow, shape.c * shape.r * shape.s, a.data(), cols.data(),
       y.data());
  return y;
}

}  // namespace tdc
