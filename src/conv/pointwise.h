// 1×1 (channel-wise) convolution.
//
// The first and last stages of the Tucker pipeline (paper Eqs. 2 and 4) are
// channel mixes; on a [C, H, W] activation with a [C_in, C_out] factor they
// reduce to one GEMM: Z[C_out, H·W] = U^T · X[C_in, H·W].
#pragma once

#include "linalg/gemm.h"
#include "tensor/tensor.h"

namespace tdc {

/// Z(d, h, w) = Σ_c X(c, h, w) · U(c, d). X is [C, H, W], u is [C, D];
/// returns [D, H, W].
Tensor pointwise_conv(const Tensor& x, const Tensor& u);

/// Allocation-free channel mix with a GEMM-prepacked factor:
/// Z[D, HW] = A · X[C, HW] where `packed` holds the [D, C] mix matrix
/// (pack Uᵀ for the Tucker stages, the [N, C] weight matrix for a 1×1
/// convolution plan). `x` and `z` are flat row-major [C, HW] / [D, HW]
/// buffers; bit-identical to the pack-on-the-fly GEMM.
void pointwise_conv_prepacked(const PackedGemmA& packed, const float* x,
                              std::int64_t hw, float* z);

}  // namespace tdc
