// 1×1 (channel-wise) convolution.
//
// The first and last stages of the Tucker pipeline (paper Eqs. 2 and 4) are
// channel mixes; on a [C, H, W] activation with a [C_in, C_out] factor they
// reduce to one GEMM: Z[C_out, H·W] = U^T · X[C_in, H·W].
#pragma once

#include "tensor/tensor.h"

namespace tdc {

/// Z(d, h, w) = Σ_c X(c, h, w) · U(c, d). X is [C, H, W], u is [C, D];
/// returns [D, H, W].
Tensor pointwise_conv(const Tensor& x, const Tensor& u);

}  // namespace tdc
