// Truncated SVD via the Gram-matrix route.
//
// For a (typically wide) matrix A ∈ R^{m×n} with m ≤ a few thousand, the left
// singular vectors are the eigenvectors of A·A^T and the singular values the
// square roots of its eigenvalues. This is exactly what truncated HOSVD
// (paper Eq. 12) needs: only U and σ, never V. The Gram matrix is built by
// the engine's packed GEMM and handed to the tridiagonal eigensolver
// (linalg/eig.h), so every entry point here is deterministic across thread
// counts; leading_left_singular_vectors takes the top-k eigenpath and never
// pays for vectors it discards.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace tdc {

struct SvdLeft {
  /// Singular values in descending order (size min(m, n), padded with zeros
  /// when the Gram spectrum has trailing negatives squashed to zero).
  std::vector<double> singular_values;
  /// Left singular vectors, shape [m, m]; column i pairs with
  /// singular_values[i] for i < min(m, n).
  Tensor u;
};

/// Left singular vectors + singular values of a rank-2 tensor.
SvdLeft svd_left(const Tensor& a);

/// Convenience: the first `k` columns of svd_left(a).u, shape [m, k] —
/// computed through the top-k eigensolver, so only the k kept vectors are
/// ever formed.
Tensor leading_left_singular_vectors(const Tensor& a, std::int64_t k);

/// Singular values only (descending, size min(m, n)): the vector-free
/// eigenvalue pass, for rank scans that never look at U.
std::vector<double> left_singular_values(const Tensor& a);

}  // namespace tdc
