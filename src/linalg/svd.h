// Truncated SVD via the Gram-matrix route.
//
// For a (typically wide) matrix A ∈ R^{m×n} with m ≤ a few thousand, the left
// singular vectors are the eigenvectors of A·A^T and the singular values the
// square roots of its eigenvalues. This is exactly what truncated HOSVD
// (paper Eq. 12) needs: only U and σ, never V.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace tdc {

struct SvdLeft {
  /// Singular values in descending order (size min(m, n), padded with zeros
  /// when the Gram spectrum has trailing negatives squashed to zero).
  std::vector<double> singular_values;
  /// Left singular vectors, shape [m, m]; column i pairs with
  /// singular_values[i] for i < min(m, n).
  Tensor u;
};

/// Left singular vectors + singular values of a rank-2 tensor.
SvdLeft svd_left(const Tensor& a);

/// Convenience: the first `k` columns of svd_left(a).u, shape [m, k].
Tensor leading_left_singular_vectors(const Tensor& a, std::int64_t k);

}  // namespace tdc
