// Symmetric eigensolver (cyclic Jacobi).
//
// The Tucker truncation in the ADMM K̂-update needs the leading left singular
// vectors of the mode-1/mode-2 unfoldings T_(k). Rather than a full SVD of a
// C×(N·R·S) matrix we eigendecompose the small Gram matrix T_(k)·T_(k)^T
// (at most 2048×2048 for the models in this repo); singular values are the
// square roots of its eigenvalues and the eigenvectors are the left singular
// vectors. Cyclic Jacobi is simple, robust, and more than accurate enough for
// rank truncation.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace tdc {

struct EigResult {
  /// Eigenvalues in descending order.
  std::vector<double> values;
  /// Column i of `vectors` is the eigenvector for values[i]; shape [n, n].
  Tensor vectors;
};

/// Eigendecomposition of a symmetric matrix (only the lower triangle is
/// read). Throws if `a` is not square.
EigResult eig_symmetric(const Tensor& a, int max_sweeps = 64,
                        double tol = 1e-11);

}  // namespace tdc
