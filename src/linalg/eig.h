// Symmetric eigensolvers.
//
// The Tucker truncation in the ADMM K̂-update and every plan-compile-time
// factorization need the leading left singular vectors of the mode-1/mode-2
// unfoldings T_(k). Rather than a full SVD of a C×(N·R·S) matrix we
// eigendecompose the small Gram matrix T_(k)·T_(k)^T (at most 2048×2048 for
// the models in this repo); singular values are the square roots of its
// eigenvalues and the eigenvectors are the left singular vectors.
//
// Two solvers back that route:
//   * eig_symmetric / eig_symmetric_topk / eig_symmetric_values — the
//     production path: Householder tridiagonalization followed by
//     implicit-shift QL on the tridiagonal form. The O(n³) stages (the
//     trailing-block updates, the QL rotation accumulation, the reflector
//     back-transform) run through the shared parallel runtime with
//     fixed-order per-element reductions, so they scale with
//     TDC_NUM_THREADS while the output stays bit-identical across thread
//     counts — the same invariant every exec plan guarantees. The top-k
//     variant computes only the leading eigenvectors (tridiagonal inverse
//     iteration + a k-column back-transform), which is what
//     tucker_decompose actually consumes.
//   * eig_symmetric_jacobi — the original serial cyclic-Jacobi kernel,
//     retained as the small-n fallback (eig_symmetric dispatches to it for
//     n <= kEigJacobiFallbackDim, where O(n³)·sweeps is negligible and its
//     simplicity wins) and as the independent oracle of the test suite.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace tdc {

struct EigResult {
  /// Eigenvalues in descending order (all n for the full solvers, the
  /// leading k for eig_symmetric_topk).
  std::vector<double> values;
  /// Column i of `vectors` is the eigenvector for values[i]; shape [n, n]
  /// for the full solvers, [n, k] for eig_symmetric_topk.
  Tensor vectors;
};

/// At or below this dimension eig_symmetric and eig_symmetric_topk dispatch
/// to the Jacobi kernel instead of the tridiagonal pipeline.
inline constexpr std::int64_t kEigJacobiFallbackDim = 32;

/// Eigendecomposition of a symmetric matrix (only the lower triangle is
/// read). Tridiagonal QL for n > kEigJacobiFallbackDim, Jacobi at or below.
/// Deterministic: bit-identical results for any TDC_NUM_THREADS.
/// Throws if `a` is not square.
EigResult eig_symmetric(const Tensor& a);

/// The leading `k` eigenpairs only (descending): tridiagonalization, QL for
/// the eigenvalues, then inverse iteration + back-transform for just the k
/// vectors kept — O(n³) for the reduction but only O(n²k) for the vectors.
/// Requires 1 <= k <= n. Same determinism contract as eig_symmetric. Within
/// a cluster of (near-)equal eigenvalues the returned vectors span the same
/// eigenspace as any other solver's but are an arbitrary orthonormal basis
/// of it, exactly like the full solvers.
EigResult eig_symmetric_topk(const Tensor& a, std::int64_t k);

/// All eigenvalues in descending order, no eigenvectors (the latent-rank
/// scan needs nothing else). Same dispatch and determinism as eig_symmetric.
std::vector<double> eig_symmetric_values(const Tensor& a);

/// The tridiagonal-QL pipeline at any n (no Jacobi dispatch) — exposed so
/// the test suite can pit it against the Jacobi oracle on small matrices.
EigResult eig_symmetric_ql(const Tensor& a);

/// The original serial cyclic-Jacobi kernel: simple, robust, O(n³)·sweeps.
/// Small-n fallback of eig_symmetric and the oracle of tests/test_eig.cpp.
EigResult eig_symmetric_jacobi(const Tensor& a, int max_sweeps = 64,
                               double tol = 1e-11);

}  // namespace tdc
