#include "linalg/eig.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"
#include "common/parallel.h"
#include "common/rng.h"

namespace tdc {

namespace {

constexpr double kEps = std::numeric_limits<double>::epsilon();

// Every parallel loop in this file assigns each output element to exactly one
// chunk and accumulates it with a serial, index-ordered inner loop, so the
// result is bit-identical for any thread count / chunk partition — the same
// determinism contract the exec plans advertise.

/// Symmetrize the lower triangle of `a` into a dense row-major double buffer.
/// Gram matrices square the condition number, so all solver internals stay in
/// double precision and only the final eigenvectors round to float.
std::vector<double> load_symmetric(const Tensor& a) {
  const std::int64_t n = a.dim(0);
  std::vector<double> m(static_cast<std::size_t>(n * n));
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      const float v = (i >= j) ? a(i, j) : a(j, i);
      m[static_cast<std::size_t>(i * n + j)] = static_cast<double>(v);
    }
  }
  return m;
}

/// Householder reduction A = Q·T·Q^T with Q = H_0·H_1·…·H_{n-3}. The
/// reflectors are kept (row r of `u` holds the vector of H_r, supported on
/// indices r+1…n-1) so callers can back-transform however many tridiagonal
/// eigenvectors they actually need.
struct Tridiagonal {
  std::int64_t n = 0;
  std::vector<double> d;    ///< diagonal of T, size n
  std::vector<double> e;    ///< sub-diagonal, e[i] couples i and i+1, size n-1
  std::vector<double> u;    ///< reflector r at u[r*n + i], i in (r, n)
  std::vector<double> tau;  ///< H_r = I - tau[r]·u_r·u_r^T, size max(n-2, 0)
};

Tridiagonal tridiagonalize(std::vector<double> m, std::int64_t n) {
  Tridiagonal t;
  t.n = n;
  t.d.resize(static_cast<std::size_t>(n));
  t.e.assign(static_cast<std::size_t>(std::max<std::int64_t>(n - 1, 0)), 0.0);
  t.u.assign(static_cast<std::size_t>(n * n), 0.0);
  t.tau.assign(static_cast<std::size_t>(std::max<std::int64_t>(n - 2, 0)),
               0.0);

  std::vector<double> p(static_cast<std::size_t>(n));
  std::vector<double> w(static_cast<std::size_t>(n));
  for (std::int64_t k = 0; k + 2 < n; ++k) {
    double* uk = t.u.data() + k * n;
    const double x0 = m[static_cast<std::size_t>((k + 1) * n + k)];
    double tail2 = 0.0;  // energy strictly below the sub-diagonal
    for (std::int64_t i = k + 2; i < n; ++i) {
      const double x = m[static_cast<std::size_t>(i * n + k)];
      tail2 += x * x;
    }
    t.d[static_cast<std::size_t>(k)] = m[static_cast<std::size_t>(k * n + k)];
    if (tail2 == 0.0) {
      // Column already tridiagonal; no reflector.
      t.e[static_cast<std::size_t>(k)] = x0;
      continue;
    }
    const double sigma = std::sqrt(x0 * x0 + tail2);
    const double alpha = (x0 >= 0.0) ? -sigma : sigma;
    uk[k + 1] = x0 - alpha;
    for (std::int64_t i = k + 2; i < n; ++i) {
      uk[i] = m[static_cast<std::size_t>(i * n + k)];
    }
    // ‖u‖² = 2σ(σ + |x0|) = 2(σ² − α·x0); α·x0 ≤ 0 keeps it safely positive.
    const double tau = 2.0 / (2.0 * (sigma * sigma - alpha * x0));
    t.e[static_cast<std::size_t>(k)] = alpha;
    t.tau[static_cast<std::size_t>(k)] = tau;

    // p = τ·A22·u over the trailing block; one row per element, fixed-order
    // inner accumulation.
    parallel_for(k + 1, n, 8, [&](std::int64_t b, std::int64_t e_) {
      for (std::int64_t i = b; i < e_; ++i) {
        const double* row = m.data() + i * n;
        double acc = 0.0;
        for (std::int64_t j = k + 1; j < n; ++j) {
          acc += row[j] * uk[j];
        }
        p[static_cast<std::size_t>(i)] = tau * acc;
      }
    });
    double upk = 0.0;
    for (std::int64_t i = k + 1; i < n; ++i) {
      upk += uk[i] * p[static_cast<std::size_t>(i)];
    }
    const double kk = 0.5 * tau * upk;
    for (std::int64_t i = k + 1; i < n; ++i) {
      w[static_cast<std::size_t>(i)] = p[static_cast<std::size_t>(i)] -
                                       kk * uk[i];
    }
    // A22 ← A22 − u·w^T − w·u^T, full trailing square so the buffer stays
    // symmetric and the next matvec reads contiguous rows.
    parallel_for(k + 1, n, 8, [&](std::int64_t b, std::int64_t e_) {
      for (std::int64_t i = b; i < e_; ++i) {
        double* row = m.data() + i * n;
        const double ui = uk[i];
        const double wi = w[static_cast<std::size_t>(i)];
        for (std::int64_t j = k + 1; j < n; ++j) {
          row[j] -= ui * w[static_cast<std::size_t>(j)] + wi * uk[j];
        }
      }
    });
  }
  if (n >= 2) {
    t.d[static_cast<std::size_t>(n - 2)] =
        m[static_cast<std::size_t>((n - 2) * n + (n - 2))];
    t.e[static_cast<std::size_t>(n - 2)] =
        m[static_cast<std::size_t>((n - 1) * n + (n - 2))];
  }
  t.d[static_cast<std::size_t>(n - 1)] =
      m[static_cast<std::size_t>((n - 1) * n + (n - 1))];
  return t;
}

struct Rotation {
  std::int64_t i;
  double c;
  double s;
};

/// Implicit-shift QL on (d, e). When `w` is non-null it is a row-major
/// [n, ncomp] matrix holding one tracked eigenvector per *row* (the
/// transpose of the textbook Z): a rotation on tridiagonal indices (i, i+1)
/// mixes two contiguous rows, so the update vectorizes along the component
/// axis and parallelizes over component chunks. Every chunk replays the
/// whole rotation batch of a QL step in recorded order, and an element is
/// only ever combined with its same-component neighbor, so the chunking
/// never changes a single result bit.
void tridiag_ql(std::vector<double>& d, std::vector<double>& ein,
                std::int64_t n, double* w, std::int64_t ncomp) {
  if (n <= 1) {
    return;
  }
  std::vector<double> e(static_cast<std::size_t>(n), 0.0);
  std::copy(ein.begin(), ein.end(), e.begin());
  std::vector<Rotation> rots;

  for (std::int64_t l = 0; l < n; ++l) {
    int iter = 0;
    std::int64_t m;
    do {
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::abs(d[static_cast<std::size_t>(m)]) +
                          std::abs(d[static_cast<std::size_t>(m + 1)]);
        if (std::abs(e[static_cast<std::size_t>(m)]) <= kEps * dd) {
          break;
        }
      }
      if (m == l) {
        break;
      }
      TDC_CHECK_MSG(++iter <= 50, "tridiagonal QL failed to converge");
      double g = (d[static_cast<std::size_t>(l + 1)] -
                  d[static_cast<std::size_t>(l)]) /
                 (2.0 * e[static_cast<std::size_t>(l)]);
      double r = std::hypot(g, 1.0);
      g = d[static_cast<std::size_t>(m)] - d[static_cast<std::size_t>(l)] +
          e[static_cast<std::size_t>(l)] / (g + std::copysign(r, g));
      double s = 1.0;
      double c = 1.0;
      double p = 0.0;
      rots.clear();
      bool underflow = false;
      for (std::int64_t i = m - 1; i >= l; --i) {
        double f = s * e[static_cast<std::size_t>(i)];
        const double b = c * e[static_cast<std::size_t>(i)];
        r = std::hypot(f, g);
        e[static_cast<std::size_t>(i + 1)] = r;
        if (r == 0.0) {
          d[static_cast<std::size_t>(i + 1)] -= p;
          e[static_cast<std::size_t>(m)] = 0.0;
          underflow = true;
          break;
        }
        s = f / r;
        c = g / r;
        g = d[static_cast<std::size_t>(i + 1)] - p;
        r = (d[static_cast<std::size_t>(i)] - g) * s + 2.0 * c * b;
        p = s * r;
        d[static_cast<std::size_t>(i + 1)] = g + p;
        g = c * r - b;
        if (w != nullptr) {
          rots.push_back({i, c, s});
        }
      }
      if (w != nullptr && !rots.empty()) {
        parallel_for(0, ncomp, 64, [&](std::int64_t jb, std::int64_t je) {
          for (const Rotation& rot : rots) {
            double* wi = w + rot.i * ncomp;
            double* wi1 = wi + ncomp;
            for (std::int64_t j = jb; j < je; ++j) {
              const double f = wi1[j];
              wi1[j] = rot.s * wi[j] + rot.c * f;
              wi[j] = rot.c * wi[j] - rot.s * f;
            }
          }
        });
      }
      if (underflow) {
        continue;
      }
      d[static_cast<std::size_t>(l)] -= p;
      e[static_cast<std::size_t>(l)] = g;
      e[static_cast<std::size_t>(m)] = 0.0;
    } while (m != l);
  }
}

/// V = Q·Z with Q = H_0·…·H_{n-3}, on the transposed layout: `w` is
/// row-major [nvec, n] with one eigenvector per row. H_r acts on the
/// component axis, so per vector it is a contiguous dot product plus a
/// contiguous axpy against the stored reflector. Vectors are independent —
/// the loop parallelizes over vector chunks (reflectors outermost inside a
/// chunk so u_r is reused across the chunk's rows), and each vector's
/// arithmetic never depends on the chunking.
void apply_reflectors(const Tridiagonal& t, double* w, std::int64_t nvec) {
  const std::int64_t n = t.n;
  if (n < 3) {
    return;
  }
  parallel_for(0, nvec, 8, [&](std::int64_t vb, std::int64_t ve) {
    for (std::int64_t r = n - 3; r >= 0; --r) {
      const double tau = t.tau[static_cast<std::size_t>(r)];
      if (tau == 0.0) {
        continue;
      }
      const double* ur = t.u.data() + r * n;
      for (std::int64_t v = vb; v < ve; ++v) {
        double* wv = w + v * n;
        double dot = 0.0;
        for (std::int64_t c = r + 1; c < n; ++c) {
          dot += ur[c] * wv[c];
        }
        dot *= tau;
        for (std::int64_t c = r + 1; c < n; ++c) {
          wv[c] -= dot * ur[c];
        }
      }
    }
  });
}

/// Descending eigenvalue order with index tie-break (a strict weak order, so
/// the permutation is unique and the output deterministic).
std::vector<std::int64_t> descending_order(const std::vector<double>& d) {
  std::vector<std::int64_t> order(d.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::int64_t x, std::int64_t y) {
    const double dx = d[static_cast<std::size_t>(x)];
    const double dy = d[static_cast<std::size_t>(y)];
    return dx != dy ? dx > dy : x < y;
  });
  return order;
}

/// LU factorization of (T − λI) with partial pivoting (tridiagonal +
/// second-superdiagonal fill-in), reused across the inverse-iteration solves
/// for one shift. Tiny pivots are floored at eps·‖T‖ so an exact eigenvalue
/// shift amplifies instead of dividing by zero — exactly what inverse
/// iteration wants.
struct ShiftedLu {
  std::vector<double> diag;  ///< pivots
  std::vector<double> sup1;  ///< first superdiagonal of U
  std::vector<double> sup2;  ///< second superdiagonal of U
  std::vector<double> mult;  ///< elimination multipliers
  std::vector<bool> pivoted;
};

ShiftedLu factor_shifted(const std::vector<double>& d,
                         const std::vector<double>& e, std::int64_t n,
                         double lambda, double norm_t) {
  ShiftedLu lu;
  lu.diag.assign(static_cast<std::size_t>(n), 0.0);
  lu.sup1.assign(static_cast<std::size_t>(n), 0.0);
  lu.sup2.assign(static_cast<std::size_t>(n), 0.0);
  lu.mult.assign(static_cast<std::size_t>(n), 0.0);
  lu.pivoted.assign(static_cast<std::size_t>(n), false);
  const double floor = std::max(kEps * norm_t, kEps);

  // Working row i: entries (p, q, r2) at columns (i, i+1, i+2).
  double p = d[0] - lambda;
  double q = n > 1 ? e[0] : 0.0;
  double r2 = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    if (i + 1 < n) {
      const double sub = e[static_cast<std::size_t>(i)];
      const double nd = d[static_cast<std::size_t>(i + 1)] - lambda;
      const double ne = (i + 2 < n) ? e[static_cast<std::size_t>(i + 1)] : 0.0;
      if (std::abs(sub) > std::abs(p)) {
        lu.pivoted[static_cast<std::size_t>(i)] = true;
        lu.diag[static_cast<std::size_t>(i)] = sub;
        lu.sup1[static_cast<std::size_t>(i)] = nd;
        lu.sup2[static_cast<std::size_t>(i)] = ne;
        const double m = p / sub;
        lu.mult[static_cast<std::size_t>(i)] = m;
        p = q - m * nd;
        q = r2 - m * ne;
      } else {
        const double piv = std::abs(p) < floor ? std::copysign(floor, p) : p;
        lu.diag[static_cast<std::size_t>(i)] = piv;
        lu.sup1[static_cast<std::size_t>(i)] = q;
        lu.sup2[static_cast<std::size_t>(i)] = r2;
        const double m = sub / piv;
        lu.mult[static_cast<std::size_t>(i)] = m;
        p = nd - m * q;
        q = ne - m * r2;
      }
      r2 = 0.0;
    } else {
      lu.diag[static_cast<std::size_t>(i)] =
          std::abs(p) < floor ? std::copysign(floor, p) : p;
    }
  }
  return lu;
}

/// Solve (T − λI)x = b in place (b becomes x). Rescales deterministically
/// when a near-singular shift amplifies past 1e150 so long zero-clusters
/// cannot overflow; only the direction matters to the caller.
void solve_shifted(const ShiftedLu& lu, std::vector<double>& b) {
  const std::int64_t n = static_cast<std::int64_t>(b.size());
  for (std::int64_t i = 0; i + 1 < n; ++i) {
    if (lu.pivoted[static_cast<std::size_t>(i)]) {
      std::swap(b[static_cast<std::size_t>(i)],
                b[static_cast<std::size_t>(i + 1)]);
    }
    b[static_cast<std::size_t>(i + 1)] -=
        lu.mult[static_cast<std::size_t>(i)] * b[static_cast<std::size_t>(i)];
  }
  for (std::int64_t i = n - 1; i >= 0; --i) {
    double x = b[static_cast<std::size_t>(i)];
    if (i + 1 < n) {
      x -= lu.sup1[static_cast<std::size_t>(i)] *
           b[static_cast<std::size_t>(i + 1)];
    }
    if (i + 2 < n) {
      x -= lu.sup2[static_cast<std::size_t>(i)] *
           b[static_cast<std::size_t>(i + 2)];
    }
    x /= lu.diag[static_cast<std::size_t>(i)];
    if (std::abs(x) > 1e150) {
      const double scale = 1.0 / std::abs(x);
      for (std::int64_t j = i; j < n; ++j) {
        b[static_cast<std::size_t>(j)] *= scale;
      }
      for (std::int64_t j = 0; j < i; ++j) {
        b[static_cast<std::size_t>(j)] *= scale;
      }
      x *= scale;
    }
    b[static_cast<std::size_t>(i)] = x;
  }
}

double norm2(const std::vector<double>& x) {
  double s = 0.0;
  for (const double v : x) {
    s += v * v;
  }
  return std::sqrt(s);
}

/// Eigenvectors of the tridiagonal (d, e) for the `want` leading (descending)
/// eigenvalues in `vals` — dstein-style inverse iteration: deterministic
/// per-vector random starts, perturbed shifts inside clusters, modified
/// Gram–Schmidt against earlier members of the same cluster. Returns a
/// row-major [want, n] matrix, one vector per row (the layout
/// apply_reflectors consumes).
std::vector<double> tridiag_topk_vectors(const std::vector<double>& d,
                                         const std::vector<double>& e,
                                         std::int64_t n,
                                         const std::vector<double>& vals,
                                         std::int64_t want) {
  double norm_t = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    double row = std::abs(d[static_cast<std::size_t>(i)]);
    if (i > 0) {
      row += std::abs(e[static_cast<std::size_t>(i - 1)]);
    }
    if (i + 1 < n) {
      row += std::abs(e[static_cast<std::size_t>(i)]);
    }
    norm_t = std::max(norm_t, row);
  }
  const double cluster_tol = std::max(1e-3 * norm_t, 1e-300);
  const double sep = std::max(10.0 * kEps * norm_t, 1e-300);

  std::vector<double> z(static_cast<std::size_t>(n * want), 0.0);
  std::vector<std::vector<double>> cluster;  // unit vectors of current cluster
  std::vector<double> x(static_cast<std::size_t>(n));
  double prev_lambda = 0.0;
  double prev_shift = 0.0;
  for (std::int64_t j = 0; j < want; ++j) {
    const double lambda = vals[static_cast<std::size_t>(j)];
    double shift = lambda;
    if (j > 0 && prev_lambda - lambda <= cluster_tol) {
      // Same cluster: keep the shifts distinct so successive solves do not
      // collapse onto one direction before orthogonalization.
      if (prev_shift - shift < sep) {
        shift = prev_shift - sep;
      }
    } else {
      cluster.clear();
    }
    const ShiftedLu lu = factor_shifted(d, e, n, shift, norm_t);

    for (int attempt = 0; attempt < 3; ++attempt) {
      Rng rng(0x7D1C0FFEEULL + 131ULL * static_cast<std::uint64_t>(j) +
              static_cast<std::uint64_t>(attempt));
      for (std::int64_t i = 0; i < n; ++i) {
        x[static_cast<std::size_t>(i)] = rng.uniform(-1.0, 1.0);
      }
      bool ok = false;
      for (int it = 0; it < 3; ++it) {
        solve_shifted(lu, x);
        for (const std::vector<double>& prev : cluster) {
          double dot = 0.0;
          for (std::int64_t i = 0; i < n; ++i) {
            dot += prev[static_cast<std::size_t>(i)] *
                   x[static_cast<std::size_t>(i)];
          }
          for (std::int64_t i = 0; i < n; ++i) {
            x[static_cast<std::size_t>(i)] -=
                dot * prev[static_cast<std::size_t>(i)];
          }
        }
        const double nrm = norm2(x);
        if (!(nrm > 0.0) || !std::isfinite(nrm)) {
          ok = false;
          break;
        }
        const double inv = 1.0 / nrm;
        for (double& v : x) {
          v *= inv;
        }
        ok = true;
      }
      if (ok) {
        break;
      }
    }

    cluster.push_back(x);
    std::copy(x.begin(), x.end(), z.begin() + j * n);
    prev_lambda = lambda;
    prev_shift = shift;
  }
  return z;
}

/// Assemble the public result from the vector-per-row buffer `w` ([*, n]):
/// column `col` of the output is row order[col] of `w`.
EigResult finalize(const std::vector<double>& d, const std::vector<double>& w,
                   std::int64_t n, const std::vector<std::int64_t>& order,
                   std::int64_t keep) {
  EigResult result;
  result.values.resize(static_cast<std::size_t>(keep));
  result.vectors = Tensor({n, keep});
  for (std::int64_t col = 0; col < keep; ++col) {
    const std::int64_t src = order[static_cast<std::size_t>(col)];
    result.values[static_cast<std::size_t>(col)] =
        d[static_cast<std::size_t>(src)];
    for (std::int64_t row = 0; row < n; ++row) {
      result.vectors(row, col) =
          static_cast<float>(w[static_cast<std::size_t>(src * n + row)]);
    }
  }
  return result;
}

void check_square(const Tensor& a) {
  TDC_CHECK_MSG(a.rank() == 2 && a.dim(0) == a.dim(1),
                "eig_symmetric expects a square matrix");
}

}  // namespace

EigResult eig_symmetric_ql(const Tensor& a) {
  check_square(a);
  const std::int64_t n = a.dim(0);
  Tridiagonal t = tridiagonalize(load_symmetric(a), n);
  // W starts as the identity in the tridiagonal basis (one tracked vector
  // per row), picks up the QL rotations, then the reflector back-transform
  // maps it to the original basis — V = Q·Z_tri.
  std::vector<double> w(static_cast<std::size_t>(n * n), 0.0);
  for (std::int64_t i = 0; i < n; ++i) {
    w[static_cast<std::size_t>(i * n + i)] = 1.0;
  }
  tridiag_ql(t.d, t.e, n, w.data(), n);
  apply_reflectors(t, w.data(), n);
  return finalize(t.d, w, n, descending_order(t.d), n);
}

EigResult eig_symmetric(const Tensor& a) {
  check_square(a);
  if (a.dim(0) <= kEigJacobiFallbackDim) {
    return eig_symmetric_jacobi(a);
  }
  return eig_symmetric_ql(a);
}

EigResult eig_symmetric_topk(const Tensor& a, std::int64_t k) {
  check_square(a);
  const std::int64_t n = a.dim(0);
  TDC_CHECK_MSG(k >= 1 && k <= n, "eig_symmetric_topk: k out of range");
  if (n <= kEigJacobiFallbackDim) {
    EigResult full = eig_symmetric_jacobi(a);
    EigResult result;
    result.values.assign(full.values.begin(), full.values.begin() + k);
    result.vectors = Tensor({n, k});
    for (std::int64_t row = 0; row < n; ++row) {
      for (std::int64_t col = 0; col < k; ++col) {
        result.vectors(row, col) = full.vectors(row, col);
      }
    }
    return result;
  }

  Tridiagonal t = tridiagonalize(load_symmetric(a), n);
  // Eigenvalues via a vector-free QL pass on a copy; the original (d, e)
  // stay intact for the inverse-iteration solves.
  std::vector<double> dv = t.d;
  std::vector<double> ev = t.e;
  tridiag_ql(dv, ev, n, nullptr, 0);
  std::sort(dv.begin(), dv.end(), std::greater<double>());
  dv.resize(static_cast<std::size_t>(k));

  std::vector<double> w = tridiag_topk_vectors(t.d, t.e, n, dv, k);
  apply_reflectors(t, w.data(), k);

  EigResult result;
  result.values = std::move(dv);
  result.vectors = Tensor({n, k});
  for (std::int64_t col = 0; col < k; ++col) {
    const double* wv = w.data() + col * n;
    for (std::int64_t row = 0; row < n; ++row) {
      result.vectors(row, col) = static_cast<float>(wv[row]);
    }
  }
  return result;
}

std::vector<double> eig_symmetric_values(const Tensor& a) {
  check_square(a);
  const std::int64_t n = a.dim(0);
  if (n <= kEigJacobiFallbackDim) {
    return eig_symmetric_jacobi(a).values;
  }
  Tridiagonal t = tridiagonalize(load_symmetric(a), n);
  tridiag_ql(t.d, t.e, n, nullptr, 0);
  std::sort(t.d.begin(), t.d.end(), std::greater<double>());
  return t.d;
}

EigResult eig_symmetric_jacobi(const Tensor& a, int max_sweeps, double tol) {
  check_square(a);
  const std::int64_t n = a.dim(0);

  std::vector<double> m = load_symmetric(a);
  std::vector<double> v(static_cast<std::size_t>(n * n), 0.0);
  for (std::int64_t i = 0; i < n; ++i) {
    v[static_cast<std::size_t>(i * n + i)] = 1.0;
  }

  auto off_norm = [&]() {
    double s = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = i + 1; j < n; ++j) {
        const double x = m[static_cast<std::size_t>(i * n + j)];
        s += 2.0 * x * x;
      }
    }
    return std::sqrt(s);
  };

  const double scale = std::max(1.0, std::sqrt(std::inner_product(
      m.begin(), m.end(), m.begin(), 0.0)));

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_norm() <= tol * scale) {
      break;
    }
    for (std::int64_t p = 0; p < n - 1; ++p) {
      for (std::int64_t q = p + 1; q < n; ++q) {
        const double apq = m[static_cast<std::size_t>(p * n + q)];
        if (std::abs(apq) <= 1e-300) {
          continue;
        }
        const double app = m[static_cast<std::size_t>(p * n + p)];
        const double aqq = m[static_cast<std::size_t>(q * n + q)];
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0)
                             ? 1.0 / (theta + std::sqrt(1.0 + theta * theta))
                             : 1.0 / (theta - std::sqrt(1.0 + theta * theta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        // Apply the rotation G(p, q, θ) on both sides of M and accumulate in V.
        for (std::int64_t k = 0; k < n; ++k) {
          const double mkp = m[static_cast<std::size_t>(k * n + p)];
          const double mkq = m[static_cast<std::size_t>(k * n + q)];
          m[static_cast<std::size_t>(k * n + p)] = c * mkp - s * mkq;
          m[static_cast<std::size_t>(k * n + q)] = s * mkp + c * mkq;
        }
        for (std::int64_t k = 0; k < n; ++k) {
          const double mpk = m[static_cast<std::size_t>(p * n + k)];
          const double mqk = m[static_cast<std::size_t>(q * n + k)];
          m[static_cast<std::size_t>(p * n + k)] = c * mpk - s * mqk;
          m[static_cast<std::size_t>(q * n + k)] = s * mpk + c * mqk;
        }
        // V is kept transposed (one eigenvector per row), so the rotation
        // mixes two contiguous rows.
        double* vp = v.data() + p * n;
        double* vq = v.data() + q * n;
        for (std::int64_t k = 0; k < n; ++k) {
          const double vkp = vp[k];
          const double vkq = vq[k];
          vp[k] = c * vkp - s * vkq;
          vq[k] = s * vkp + c * vkq;
        }
      }
    }
  }

  std::vector<double> diag(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    diag[static_cast<std::size_t>(i)] = m[static_cast<std::size_t>(i * n + i)];
  }
  return finalize(diag, v, n, descending_order(diag), n);
}

}  // namespace tdc
