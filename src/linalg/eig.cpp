#include "linalg/eig.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace tdc {

EigResult eig_symmetric(const Tensor& a, int max_sweeps, double tol) {
  TDC_CHECK_MSG(a.rank() == 2 && a.dim(0) == a.dim(1),
                "eig_symmetric expects a square matrix");
  const std::int64_t n = a.dim(0);

  // Work in double precision: Gram matrices square the condition number.
  std::vector<double> m(static_cast<std::size_t>(n * n));
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      // Symmetrize from the lower triangle.
      const float v = (i >= j) ? a(i, j) : a(j, i);
      m[static_cast<std::size_t>(i * n + j)] = static_cast<double>(v);
    }
  }
  std::vector<double> v(static_cast<std::size_t>(n * n), 0.0);
  for (std::int64_t i = 0; i < n; ++i) {
    v[static_cast<std::size_t>(i * n + i)] = 1.0;
  }

  auto off_norm = [&]() {
    double s = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = i + 1; j < n; ++j) {
        const double x = m[static_cast<std::size_t>(i * n + j)];
        s += 2.0 * x * x;
      }
    }
    return std::sqrt(s);
  };

  const double scale = std::max(1.0, std::sqrt(std::inner_product(
      m.begin(), m.end(), m.begin(), 0.0)));

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_norm() <= tol * scale) {
      break;
    }
    for (std::int64_t p = 0; p < n - 1; ++p) {
      for (std::int64_t q = p + 1; q < n; ++q) {
        const double apq = m[static_cast<std::size_t>(p * n + q)];
        if (std::abs(apq) <= 1e-300) {
          continue;
        }
        const double app = m[static_cast<std::size_t>(p * n + p)];
        const double aqq = m[static_cast<std::size_t>(q * n + q)];
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0)
                             ? 1.0 / (theta + std::sqrt(1.0 + theta * theta))
                             : 1.0 / (theta - std::sqrt(1.0 + theta * theta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        // Apply the rotation G(p, q, θ) on both sides of M and accumulate in V.
        for (std::int64_t k = 0; k < n; ++k) {
          const double mkp = m[static_cast<std::size_t>(k * n + p)];
          const double mkq = m[static_cast<std::size_t>(k * n + q)];
          m[static_cast<std::size_t>(k * n + p)] = c * mkp - s * mkq;
          m[static_cast<std::size_t>(k * n + q)] = s * mkp + c * mkq;
        }
        for (std::int64_t k = 0; k < n; ++k) {
          const double mpk = m[static_cast<std::size_t>(p * n + k)];
          const double mqk = m[static_cast<std::size_t>(q * n + k)];
          m[static_cast<std::size_t>(p * n + k)] = c * mpk - s * mqk;
          m[static_cast<std::size_t>(q * n + k)] = s * mpk + c * mqk;
        }
        for (std::int64_t k = 0; k < n; ++k) {
          const double vkp = v[static_cast<std::size_t>(k * n + p)];
          const double vkq = v[static_cast<std::size_t>(k * n + q)];
          v[static_cast<std::size_t>(k * n + p)] = c * vkp - s * vkq;
          v[static_cast<std::size_t>(k * n + q)] = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs descending by eigenvalue.
  std::vector<std::int64_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::int64_t x, std::int64_t y) {
    return m[static_cast<std::size_t>(x * n + x)] >
           m[static_cast<std::size_t>(y * n + y)];
  });

  EigResult result;
  result.values.resize(static_cast<std::size_t>(n));
  result.vectors = Tensor({n, n});
  for (std::int64_t col = 0; col < n; ++col) {
    const std::int64_t src = order[static_cast<std::size_t>(col)];
    result.values[static_cast<std::size_t>(col)] =
        m[static_cast<std::size_t>(src * n + src)];
    for (std::int64_t row = 0; row < n; ++row) {
      result.vectors(row, col) =
          static_cast<float>(v[static_cast<std::size_t>(row * n + src)]);
    }
  }
  return result;
}

}  // namespace tdc
