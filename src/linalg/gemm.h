// Blocked, OpenMP-parallel single-precision GEMM.
//
// This is the workhorse behind the im2col convolution path (the stand-in for
// cuDNN IMPLICIT_GEMM), the pointwise 1×1 convolutions of the Tucker
// pipeline, and the fully-connected layers in the training substrate.
#pragma once

#include <cstdint>
#include <span>

#include "tensor/tensor.h"

namespace tdc {

/// C[M,N] = alpha * A[M,K] * B[K,N] + beta * C[M,N]; row-major spans.
void gemm(std::int64_t m, std::int64_t n, std::int64_t k,
          std::span<const float> a, std::span<const float> b,
          std::span<float> c, float alpha = 1.0f, float beta = 0.0f);

/// C[M,N] = alpha * A^T[K,M] * B[K,N] + beta * C; A is stored [K, M].
void gemm_at(std::int64_t m, std::int64_t n, std::int64_t k,
             std::span<const float> a, std::span<const float> b,
             std::span<float> c, float alpha = 1.0f, float beta = 0.0f);

/// C[M,N] = alpha * A[M,K] * B^T[N,K] + beta * C; B is stored [N, K].
void gemm_bt(std::int64_t m, std::int64_t n, std::int64_t k,
             std::span<const float> a, std::span<const float> b,
             std::span<float> c, float alpha = 1.0f, float beta = 0.0f);

/// Tensor convenience wrapper: returns A·B for rank-2 tensors.
Tensor matmul(const Tensor& a, const Tensor& b);

/// Returns A^T for a rank-2 tensor.
Tensor transpose2d(const Tensor& a);

}  // namespace tdc
