// Packed, register-tiled single-precision GEMM.
//
// This is the workhorse behind the im2col convolution path (the stand-in for
// cuDNN IMPLICIT_GEMM), the pointwise 1×1 convolutions of the Tucker
// pipeline, and the fully-connected layers in the training substrate.
//
// The implementation packs A into MR-row and B into NR-column panels and
// drives a 6×16 FMA micro-kernel (AVX2 when available, an autovectorizable
// scalar tile otherwise), parallelized over row panels through the shared
// runtime in common/parallel.h. The transposed variants fold the transpose
// into the packing strides — no operand copies are materialized.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace tdc {

/// C[M,N] = alpha * A[M,K] * B[K,N] + beta * C[M,N]; row-major spans.
void gemm(std::int64_t m, std::int64_t n, std::int64_t k,
          std::span<const float> a, std::span<const float> b,
          std::span<float> c, float alpha = 1.0f, float beta = 0.0f);

/// C[M,N] = alpha * A^T[K,M] * B[K,N] + beta * C; A is stored [K, M].
void gemm_at(std::int64_t m, std::int64_t n, std::int64_t k,
             std::span<const float> a, std::span<const float> b,
             std::span<float> c, float alpha = 1.0f, float beta = 0.0f);

/// C[M,N] = alpha * A[M,K] * B^T[N,K] + beta * C; B is stored [N, K].
void gemm_bt(std::int64_t m, std::int64_t n, std::int64_t k,
             std::span<const float> a, std::span<const float> b,
             std::span<float> c, float alpha = 1.0f, float beta = 0.0f);

/// Fully general strided entry point of the packed kernel:
///   C[i·ldc + j] = alpha · Σ_k A(i,k)·B(k,j) + beta · C[i·ldc + j]
/// with A(i,k) = a[i·a_rs + k·a_cs] and B(k,j) = b[k·b_rs + j·b_cs].
/// Transposes and in-place row/column views (e.g. writing a row band of a
/// larger output, or reading a row slab of a CHW image) are all stride
/// choices — no operand is ever copied. The caller guarantees the strides
/// stay in bounds.
void gemm_strided(std::int64_t m, std::int64_t n, std::int64_t k,
                  const float* a, std::int64_t a_rs, std::int64_t a_cs,
                  const float* b, std::int64_t b_rs, std::int64_t b_cs,
                  float* c, std::int64_t ldc, float alpha = 1.0f,
                  float beta = 0.0f);

/// A-operand panels packed once into the micro-kernel's sliver format.
///
/// Packing the left operand is the per-call cost the plan/execute API hoists
/// out of the serving loop: a convolution plan packs its weight matrix at
/// compile time and every subsequent gemm_prepacked call skips the pack
/// entirely. The layout mirrors what the driver produces internally — for
/// each KC-deep slab of the K dimension, MR-row slivers covering all M rows
/// (zero-padded at the ragged edge) — so the micro-kernel consumes identical
/// bytes and the result is bit-identical to the pack-on-the-fly path.
class PackedGemmA {
 public:
  PackedGemmA() = default;
  std::int64_t rows() const { return m_; }
  std::int64_t depth() const { return k_; }
  bool empty() const { return panels_.empty(); }

 private:
  friend PackedGemmA pack_gemm_a(std::int64_t m, std::int64_t k,
                                 const float* a, std::int64_t a_rs,
                                 std::int64_t a_cs);
  friend void gemm_prepacked(const PackedGemmA& a, std::int64_t n,
                             const float* b, std::int64_t b_rs,
                             std::int64_t b_cs, float* c, std::int64_t ldc,
                             float alpha, float beta);
  std::int64_t m_ = 0;
  std::int64_t k_ = 0;
  std::vector<float> panels_;
};

/// Packs A (A(i,kk) = a[i·a_rs + kk·a_cs], so transposes are stride swaps)
/// for reuse across many gemm_prepacked calls.
PackedGemmA pack_gemm_a(std::int64_t m, std::int64_t k, const float* a,
                        std::int64_t a_rs, std::int64_t a_cs);

/// C[i·ldc + j] = alpha · Σ_k A(i,k)·B(k,j) + beta · C[i·ldc + j] with a
/// prepacked A; bit-identical to gemm_strided on the same operands.
void gemm_prepacked(const PackedGemmA& a, std::int64_t n, const float* b,
                    std::int64_t b_rs, std::int64_t b_cs, float* c,
                    std::int64_t ldc, float alpha = 1.0f, float beta = 0.0f);

/// The pre-engine cache-blocked saxpy-style GEMM, kept as the baseline the
/// packed kernel is benchmarked against (bench_cpu_engine) and as a second
/// oracle in the tests.
void gemm_blocked(std::int64_t m, std::int64_t n, std::int64_t k,
                  std::span<const float> a, std::span<const float> b,
                  std::span<float> c, float alpha = 1.0f, float beta = 0.0f);

/// Tensor convenience wrapper: returns A·B for rank-2 tensors.
Tensor matmul(const Tensor& a, const Tensor& b);

/// Returns A^T for a rank-2 tensor.
Tensor transpose2d(const Tensor& a);

}  // namespace tdc
