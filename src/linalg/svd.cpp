#include "linalg/svd.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "linalg/eig.h"
#include "linalg/gemm.h"

namespace tdc {

SvdLeft svd_left(const Tensor& a) {
  TDC_CHECK_MSG(a.rank() == 2, "svd_left expects a matrix");
  const std::int64_t m = a.dim(0);
  const std::int64_t n = a.dim(1);

  // Gram matrix G = A·A^T (m×m).
  Tensor g({m, m});
  gemm_bt(m, m, n, a.data(), a.data(), g.data());

  EigResult eig = eig_symmetric(g);

  SvdLeft out;
  out.u = std::move(eig.vectors);
  const std::int64_t k = std::min(m, n);
  out.singular_values.resize(static_cast<std::size_t>(k));
  for (std::int64_t i = 0; i < k; ++i) {
    // Numerical noise can push tiny eigenvalues slightly negative.
    out.singular_values[static_cast<std::size_t>(i)] =
        std::sqrt(std::max(0.0, eig.values[static_cast<std::size_t>(i)]));
  }
  return out;
}

Tensor leading_left_singular_vectors(const Tensor& a, std::int64_t k) {
  TDC_CHECK_MSG(k >= 1 && k <= a.dim(0),
                "requested more singular vectors than rows");
  SvdLeft s = svd_left(a);
  Tensor u({a.dim(0), k});
  for (std::int64_t i = 0; i < a.dim(0); ++i) {
    for (std::int64_t j = 0; j < k; ++j) {
      u(i, j) = s.u(i, j);
    }
  }
  return u;
}

}  // namespace tdc
