#include "linalg/svd.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "linalg/eig.h"
#include "linalg/gemm.h"

namespace tdc {

namespace {

/// Gram matrix G = A·A^T (m×m) through the packed engine GEMM.
Tensor gram(const Tensor& a) {
  const std::int64_t m = a.dim(0);
  Tensor g({m, m});
  gemm_bt(m, m, a.dim(1), a.data(), a.data(), g.data());
  return g;
}

std::vector<double> to_singular_values(const std::vector<double>& eigvals,
                                       std::int64_t m, std::int64_t n) {
  const std::int64_t k = std::min(m, n);
  std::vector<double> sv(static_cast<std::size_t>(k));
  for (std::int64_t i = 0; i < k; ++i) {
    // Numerical noise can push tiny eigenvalues slightly negative.
    sv[static_cast<std::size_t>(i)] =
        std::sqrt(std::max(0.0, eigvals[static_cast<std::size_t>(i)]));
  }
  return sv;
}

}  // namespace

SvdLeft svd_left(const Tensor& a) {
  TDC_CHECK_MSG(a.rank() == 2, "svd_left expects a matrix");
  EigResult eig = eig_symmetric(gram(a));
  SvdLeft out;
  out.singular_values = to_singular_values(eig.values, a.dim(0), a.dim(1));
  out.u = std::move(eig.vectors);
  return out;
}

Tensor leading_left_singular_vectors(const Tensor& a, std::int64_t k) {
  TDC_CHECK_MSG(a.rank() == 2, "svd expects a matrix");
  TDC_CHECK_MSG(k >= 1 && k <= a.dim(0),
                "requested more singular vectors than rows");
  return eig_symmetric_topk(gram(a), k).vectors;
}

std::vector<double> left_singular_values(const Tensor& a) {
  TDC_CHECK_MSG(a.rank() == 2, "svd expects a matrix");
  return to_singular_values(eig_symmetric_values(gram(a)), a.dim(0),
                            a.dim(1));
}

}  // namespace tdc
