#include "linalg/gemm_s8.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "common/alloc_guard.h"
#include "common/annotations.h"
#include "common/check.h"
#include "common/deadline.h"
#include "common/parallel.h"

namespace tdc {

namespace {

// Same BLIS-style geometry as the fp32 engine (linalg/gemm.cpp); the 8-bit
// operands make every panel 4× smaller, so the fp32 blocking is comfortably
// cache-resident here too. kKc stays a multiple of kKq so only the final K
// block ever carries quad padding.
constexpr std::int64_t kMr = 6;
constexpr std::int64_t kNr = 16;
constexpr std::int64_t kKq = 4;     // k-quad: k's reduced per maddubs+madd
constexpr std::int64_t kMc = 120;   // multiple of kMr
constexpr std::int64_t kKc = 256;   // multiple of kKq
constexpr std::int64_t kNc = 1024;  // multiple of kNr

std::int64_t quadup(std::int64_t k) {
  return detail::divup(k, kKq) * kKq;
}

std::int64_t packed_a_rows_s8(std::int64_t m) {
  return detail::divup(m, kMr) * kMr;
}

// C[MR×NR] ⊕= Ap·Bp over `quads` k-quads. Ap stores, per quad, kMr rows ×
// 4 bytes; Bp stores, per quad, kNr columns × 4 bytes (consecutive k's per
// 32-bit lane). Both are zero-padded, so the kernel is branch-free.
//
// `row_init` selects the epilogue: null accumulates into C (load + add, the
// 2nd..last K blocks); non-null overwrites C with row_init[r] + Ap·Bp (the
// first K block). Seeding the first block with −zp·row_sums folds the
// zero-point correction in for free — no C zero-fill pass before the block
// walk and no correction pass after it, which matters because those passes
// are pure int32 memory traffic that low-K serving GEMMs can't amortize.
#if defined(__AVX2__)
void micro_kernel_s8(std::int64_t quads, const std::int8_t* ap,
                     const std::uint8_t* bp, std::int32_t* c,
                     std::int64_t ldc, const std::int32_t* row_init) {
  __m256i acc[kMr][2];
  for (int r = 0; r < kMr; ++r) {
    acc[r][0] = row_init != nullptr ? _mm256_set1_epi32(row_init[r])
                                    : _mm256_setzero_si256();
    acc[r][1] = acc[r][0];
  }
#if defined(__AVX512VNNI__) && defined(__AVX512VL__)
  for (std::int64_t q = 0; q < quads; ++q) {
    // Bytes [x(k,j), x(k+1,j), x(k+2,j), x(k+3,j)] per 32-bit lane j:
    // b0 covers columns 0–7, b1 columns 8–15.
    const __m256i b0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp));
    const __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + 32));
    bp += kNr * kKq;
    for (int r = 0; r < kMr; ++r) {
      std::int32_t wq;
      std::memcpy(&wq, ap + r * kKq, sizeof(wq));
      const __m256i a = _mm256_set1_epi32(wq);
      // vpdpbusd: unsigned activations × signed weights, the four products
      // of each lane summed exactly into the int32 accumulator — one
      // instruction where the AVX2 tier below needs maddubs + madd + add.
      // The 4-product sum is ≤ 4·127·127, so the accumulation is exact and
      // bit-identical to both other tiers.
      acc[r][0] = _mm256_dpbusd_epi32(acc[r][0], b0, a);
      acc[r][1] = _mm256_dpbusd_epi32(acc[r][1], b1, a);
    }
    ap += kMr * kKq;
  }
#else
  const __m256i ones = _mm256_set1_epi16(1);
  for (std::int64_t q = 0; q < quads; ++q) {
    // Bytes [x(k,j), x(k+1,j), x(k+2,j), x(k+3,j)] per 32-bit lane j:
    // b0 covers columns 0–7, b1 columns 8–15.
    const __m256i b0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp));
    const __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + 32));
    bp += kNr * kKq;
    for (int r = 0; r < kMr; ++r) {
      std::int32_t wq;
      std::memcpy(&wq, ap + r * kKq, sizeof(wq));
      const __m256i a = _mm256_set1_epi32(wq);
      // maddubs: unsigned activations × signed weights → int16 pair sums.
      // With activations ≤ 127 the pairs are ≤ 32258 < INT16_MAX, so the
      // saturating add never saturates and the arithmetic is exact.
      const __m256i p0 = _mm256_maddubs_epi16(b0, a);
      const __m256i p1 = _mm256_maddubs_epi16(b1, a);
      // madd ×1 widens the two pair sums of each lane to one int32 per
      // column — no cross-column mixing by construction of the layout.
      acc[r][0] = _mm256_add_epi32(acc[r][0], _mm256_madd_epi16(p0, ones));
      acc[r][1] = _mm256_add_epi32(acc[r][1], _mm256_madd_epi16(p1, ones));
    }
    ap += kMr * kKq;
  }
#endif
  for (int r = 0; r < kMr; ++r) {
    std::int32_t* crow = c + r * ldc;
    __m256i* c0 = reinterpret_cast<__m256i*>(crow);
    __m256i* c1 = reinterpret_cast<__m256i*>(crow + 8);
    if (row_init != nullptr) {
      _mm256_storeu_si256(c0, acc[r][0]);
      _mm256_storeu_si256(c1, acc[r][1]);
    } else {
      _mm256_storeu_si256(c0, _mm256_add_epi32(_mm256_loadu_si256(c0),
                                               acc[r][0]));
      _mm256_storeu_si256(c1, _mm256_add_epi32(_mm256_loadu_si256(c1),
                                               acc[r][1]));
    }
  }
}
#else
void micro_kernel_s8(std::int64_t quads, const std::int8_t* ap,
                     const std::uint8_t* bp, std::int32_t* c,
                     std::int64_t ldc, const std::int32_t* row_init) {
  std::int32_t acc[kMr][kNr];
  for (int r = 0; r < kMr; ++r) {
    for (int j = 0; j < kNr; ++j) {
      acc[r][j] = row_init != nullptr ? row_init[r] : 0;
    }
  }
  for (std::int64_t q = 0; q < quads; ++q) {
    for (int r = 0; r < kMr; ++r) {
      const std::int8_t* aq = ap + r * kKq;
      for (int j = 0; j < kNr; ++j) {
        const std::uint8_t* bq = bp + j * kKq;
        std::int32_t sum = 0;
        for (int t = 0; t < kKq; ++t) {
          sum += static_cast<std::int32_t>(bq[t]) *
                 static_cast<std::int32_t>(aq[t]);
        }
        acc[r][j] += sum;
      }
    }
    ap += kMr * kKq;
    bp += kNr * kKq;
  }
  for (int r = 0; r < kMr; ++r) {
    std::int32_t* crow = c + r * ldc;
    for (int j = 0; j < kNr; ++j) {
      if (row_init != nullptr) {
        crow[j] = acc[r][j];
      } else {
        crow[j] += acc[r][j];
      }
    }
  }
}
#endif

// Packs B(pc0+0..kc, jc0+0..nc) into NR-column, k-quad-interleaved slivers,
// zero-padded in both directions (padding contributes 0·w = 0 exactly).
void pack_b_u8(std::int64_t kc, std::int64_t nc, const std::uint8_t* b,
               std::int64_t ldb, std::uint8_t* dst) {
  const std::int64_t pkc = quadup(kc);
  for (std::int64_t j0 = 0; j0 < nc; j0 += kNr) {
    const std::int64_t cols = std::min<std::int64_t>(kNr, nc - j0);
    for (std::int64_t kq = 0; kq < pkc; kq += kKq) {
      for (std::int64_t j = 0; j < kNr; ++j) {
        if (j < cols) {
          const std::uint8_t* col = b + kq * ldb + j0 + j;
          for (std::int64_t t = 0; t < kKq; ++t) {
            *dst++ = kq + t < kc ? col[t * ldb] : 0;
          }
        } else {
          for (std::int64_t t = 0; t < kKq; ++t) {
            *dst++ = 0;
          }
        }
      }
    }
  }
}

// Packs A(ic0+0..mc, pc0+0..kc) into MR-row, k-quad-interleaved slivers.
void pack_a_s8(std::int64_t mc, std::int64_t kc, const std::int8_t* a,
               std::int64_t rs, std::int64_t cs, std::int8_t* dst) {
  const std::int64_t pkc = quadup(kc);
  for (std::int64_t i0 = 0; i0 < mc; i0 += kMr) {
    const std::int64_t rows = std::min<std::int64_t>(kMr, mc - i0);
    for (std::int64_t kq = 0; kq < pkc; kq += kKq) {
      for (std::int64_t r = 0; r < kMr; ++r) {
        if (r < rows) {
          const std::int8_t* row = a + (i0 + r) * rs + kq * cs;
          for (std::int64_t t = 0; t < kKq; ++t) {
            *dst++ = kq + t < kc ? row[t * cs] : 0;
          }
        } else {
          for (std::int64_t t = 0; t < kKq; ++t) {
            *dst++ = 0;
          }
        }
      }
    }
  }
}

}  // namespace

PackedGemmAS8 pack_gemm_a_s8(std::int64_t m, std::int64_t k,
                             const std::int8_t* a, std::int64_t a_rs,
                             std::int64_t a_cs) {
  TDC_CHECK(m >= 1 && k >= 1);
  PackedGemmAS8 packed;
  packed.m_ = m;
  packed.k_ = k;
  const std::int64_t pm = packed_a_rows_s8(m);
  const std::int64_t pk = quadup(k);
  // Weight pre-packing happens at plan-compile time, not while serving.
  packed.panels_.resize(  // tdc-lint: allow(run-path-alloc)
      static_cast<std::size_t>(pm * pk));
  packed.row_sums_.resize(  // tdc-lint: allow(run-path-alloc)
      static_cast<std::size_t>(m));
  // Same (pc, ic) block walk as the driver: full K blocks are kKq-aligned,
  // so the panel for K-block pc and row panel ic starts at pm·pc + ic·pkc.
  for (std::int64_t pc = 0; pc < k; pc += kKc) {
    const std::int64_t kc = std::min<std::int64_t>(kKc, k - pc);
    const std::int64_t pkc = quadup(kc);
    for (std::int64_t ic = 0; ic < m; ic += kMc) {
      const std::int64_t mc = std::min<std::int64_t>(kMc, m - ic);
      pack_a_s8(mc, kc, a + ic * a_rs + pc * a_cs, a_rs, a_cs,
                packed.panels_.data() + pm * pc + ic * pkc);
    }
  }
  for (std::int64_t i = 0; i < m; ++i) {
    std::int32_t sum = 0;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      sum += static_cast<std::int32_t>(a[i * a_rs + kk * a_cs]);
    }
    packed.row_sums_[static_cast<std::size_t>(i)] = sum;
  }
  return packed;
}

TDC_RUN_PATH void gemm_prepacked_s8u8(const PackedGemmAS8& a, std::int64_t n,
                                      const std::uint8_t* b, std::int64_t ldb,
                                      std::int32_t b_zero_point,
                                      std::int32_t* c, std::int64_t ldc) {
  TDC_CHECK_MSG(!a.empty(), "gemm_prepacked_s8u8 on an empty PackedGemmAS8");
  TDC_CHECK(n >= 1 && ldb >= n && ldc >= n);
  const std::int64_t m = a.m_;
  const std::int64_t k = a.k_;
  const std::int64_t pm = packed_a_rows_s8(m);
  const std::int8_t* prepacked = a.panels_.data();
  const std::int32_t* row_sums = a.row_sums_.data();

  // Thread-local pack buffer: capacity only ever grows, so after first-touch
  // warm-up the steady state performs no heap allocation — enforced by the
  // armed band guard below for everything inside the block walk.
  thread_local std::vector<std::uint8_t> bbuf;
  {
    AllowAllocScope warmup;
    // Grow-only warm-up of the thread-local B pack buffer.
    // tdc-lint: allow(run-path-alloc)
    bbuf.resize(static_cast<std::size_t>(
        kKc * std::min<std::int64_t>(detail::divup(n, kNr) * kNr, kNc)));
  }
  // bbuf is thread-local, so workers must read the caller's packed panel
  // through this captured pointer, not through their own thread's bbuf.
  std::uint8_t* const bpack = bbuf.data();
  DenyAllocGuard band_guard("gemm_s8 band");
  for (std::int64_t jc = 0; jc < n; jc += kNc) {
    const std::int64_t nc = std::min<std::int64_t>(kNc, n - jc);
    for (std::int64_t pc = 0; pc < k; pc += kKc) {
      // Cooperative cancellation between KC×NC bands, like the fp32 engine:
      // C holds only whole completed band updates when this throws, and the
      // next run rewrites C from scratch (the first K block of every column
      // band overwrites instead of accumulating).
      deadline_poll("gemm_s8 band");
      const std::int64_t kc = std::min<std::int64_t>(kKc, k - pc);
      const std::int64_t pkc = quadup(kc);
      const std::int64_t quads = pkc / kKq;
      pack_b_u8(kc, nc, b + pc * ldb + jc, ldb, bpack);

      // The first K block overwrites C seeded with the zero-point
      // correction (−zp·Σ w_q per row, exact in int32: |zp·Σw| ≤ 127·127·k);
      // later blocks accumulate. C therefore needs no zero-fill pass before
      // this walk and no correction pass after it.
      const bool first_block = pc == 0;
      const std::int64_t num_panels = detail::divup(m, kMc);
      parallel_for(0, num_panels, 1, [&](std::int64_t p0, std::int64_t p1) {
        for (std::int64_t p = p0; p < p1; ++p) {
          const std::int64_t ic = p * kMc;
          const std::int64_t mc = std::min<std::int64_t>(kMc, m - ic);
          const std::int8_t* apanel = prepacked + pm * pc + ic * pkc;
          for (std::int64_t jr = 0; jr < nc; jr += kNr) {
            const std::int64_t nr = std::min<std::int64_t>(kNr, nc - jr);
            const std::uint8_t* bp = bpack + (jr / kNr) * pkc * kNr;
            for (std::int64_t ir = 0; ir < mc; ir += kMr) {
              const std::int64_t mr = std::min<std::int64_t>(kMr, mc - ir);
              const std::int8_t* ap = apanel + (ir / kMr) * pkc * kMr;
              std::int32_t* ctile = c + (ic + ir) * ldc + jc + jr;
              std::int32_t init[kMr] = {};
              if (first_block && b_zero_point != 0) {
                for (std::int64_t r = 0; r < mr; ++r) {
                  init[r] = -b_zero_point * row_sums[ic + ir + r];
                }
              }
              const std::int32_t* row_init = first_block ? init : nullptr;
              if (mr == kMr && nr == kNr) {
                micro_kernel_s8(quads, ap, bp, ctile, ldc, row_init);
              } else {
                // Ragged edge: run the kernel on an MR×NR scratch tile and
                // copy (first block) or accumulate (later blocks) only the
                // live entries.
                std::int32_t tmp[kMr * kNr] = {};
                micro_kernel_s8(quads, ap, bp, tmp, kNr, row_init);
                for (std::int64_t i = 0; i < mr; ++i) {
                  for (std::int64_t j = 0; j < nr; ++j) {
                    if (first_block) {
                      ctile[i * ldc + j] = tmp[i * kNr + j];
                    } else {
                      ctile[i * ldc + j] += tmp[i * kNr + j];
                    }
                  }
                }
              }
            }
          }
        }
      });
    }
  }

}

namespace {

// Shared requantization body: q = RNE(acc·mult) + zp, clamped to
// [q_lo, q_hi]. The AVX2 and scalar paths compute the identical float
// product and both round under round-to-nearest-even (default MXCSR /
// fenv), so they agree bit-for-bit.
template <typename Out>
void requantize_rows(const std::int32_t* acc, std::int64_t m, std::int64_t n,
                     std::int64_t ldc, const float* multiplier,
                     std::int32_t zero_point, std::int32_t q_lo,
                     std::int32_t q_hi, Out* out, std::int64_t ldo) {
  parallel_for(0, m, 8, [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t i = r0; i < r1; ++i) {
      const std::int32_t* arow = acc + i * ldc;
      Out* orow = out + i * ldo;
      const float mult = multiplier[i];
      std::int64_t j = 0;
#if defined(__AVX2__)
      const __m256 vm = _mm256_set1_ps(mult);
      const __m256i vzp = _mm256_set1_epi32(zero_point);
      const __m256i vlo = _mm256_set1_epi32(q_lo);
      const __m256i vhi = _mm256_set1_epi32(q_hi);
      alignas(32) std::int32_t tmp[8];
      for (; j + 8 <= n; j += 8) {
        const __m256 prod = _mm256_mul_ps(
            _mm256_cvtepi32_ps(_mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(arow + j))),
            vm);
        __m256i q = _mm256_add_epi32(_mm256_cvtps_epi32(prod), vzp);
        q = _mm256_min_epi32(_mm256_max_epi32(q, vlo), vhi);
        _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), q);
        for (int t = 0; t < 8; ++t) {
          orow[j + t] = static_cast<Out>(tmp[t]);
        }
      }
#endif
      for (; j < n; ++j) {
        const float prod = static_cast<float>(arow[j]) * mult;
        const std::int32_t q =
            static_cast<std::int32_t>(std::nearbyintf(prod)) + zero_point;
        orow[j] = static_cast<Out>(std::clamp(q, q_lo, q_hi));
      }
    }
  });
}

}  // namespace

void requantize_s8(const std::int32_t* acc, std::int64_t m, std::int64_t n,
                   std::int64_t ldc, const float* multiplier,
                   std::int32_t zero_point, std::int8_t* out,
                   std::int64_t ldo) {
  requantize_rows(acc, m, n, ldc, multiplier, zero_point, -128, 127, out,
                  ldo);
}

void requantize_u8(const std::int32_t* acc, std::int64_t m, std::int64_t n,
                   std::int64_t ldc, const float* multiplier,
                   std::int32_t zero_point, std::uint8_t* out,
                   std::int64_t ldo) {
  requantize_rows(acc, m, n, ldc, multiplier, zero_point, 0, 127, out, ldo);
}

void dequantize_f32(const std::int32_t* acc, std::int64_t m, std::int64_t n,
                    std::int64_t ldc, const float* multiplier, float* out,
                    std::int64_t ldo) {
  parallel_for(0, m, 8, [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t i = r0; i < r1; ++i) {
      const std::int32_t* arow = acc + i * ldc;
      float* orow = out + i * ldo;
      const float mult = multiplier[i];
      for (std::int64_t j = 0; j < n; ++j) {
        orow[j] = static_cast<float>(arow[j]) * mult;
      }
    }
  });
}

}  // namespace tdc
