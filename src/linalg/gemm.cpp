#include "linalg/gemm.h"

#include <algorithm>
#include <vector>

#include "common/check.h"

namespace tdc {

namespace {

// Cache-blocking parameters; modest sizes that fit L1/L2 on typical x86.
constexpr std::int64_t kBlockM = 64;
constexpr std::int64_t kBlockN = 64;
constexpr std::int64_t kBlockK = 256;

}  // namespace

void gemm(std::int64_t m, std::int64_t n, std::int64_t k,
          std::span<const float> a, std::span<const float> b,
          std::span<float> c, float alpha, float beta) {
  TDC_CHECK(static_cast<std::int64_t>(a.size()) >= m * k);
  TDC_CHECK(static_cast<std::int64_t>(b.size()) >= k * n);
  TDC_CHECK(static_cast<std::int64_t>(c.size()) >= m * n);

  if (beta == 0.0f) {
    std::fill(c.begin(), c.begin() + static_cast<std::size_t>(m * n), 0.0f);
  } else if (beta != 1.0f) {
    for (std::int64_t i = 0; i < m * n; ++i) {
      c[static_cast<std::size_t>(i)] *= beta;
    }
  }

#ifdef TDC_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (std::int64_t i0 = 0; i0 < m; i0 += kBlockM) {
    const std::int64_t i_max = std::min(i0 + kBlockM, m);
    for (std::int64_t k0 = 0; k0 < k; k0 += kBlockK) {
      const std::int64_t k_max = std::min(k0 + kBlockK, k);
      for (std::int64_t j0 = 0; j0 < n; j0 += kBlockN) {
        const std::int64_t j_max = std::min(j0 + kBlockN, n);
        for (std::int64_t i = i0; i < i_max; ++i) {
          for (std::int64_t kk = k0; kk < k_max; ++kk) {
            const float aik = alpha * a[static_cast<std::size_t>(i * k + kk)];
            const float* brow = &b[static_cast<std::size_t>(kk * n)];
            float* crow = &c[static_cast<std::size_t>(i * n)];
            for (std::int64_t j = j0; j < j_max; ++j) {
              crow[j] += aik * brow[j];
            }
          }
        }
      }
    }
  }
}

void gemm_at(std::int64_t m, std::int64_t n, std::int64_t k,
             std::span<const float> a, std::span<const float> b,
             std::span<float> c, float alpha, float beta) {
  // Materialize A^T once; the extra copy is cheap next to the O(mnk) work and
  // keeps the inner loops contiguous.
  std::vector<float> at(static_cast<std::size_t>(m * k));
  for (std::int64_t kk = 0; kk < k; ++kk) {
    for (std::int64_t i = 0; i < m; ++i) {
      at[static_cast<std::size_t>(i * k + kk)] =
          a[static_cast<std::size_t>(kk * m + i)];
    }
  }
  gemm(m, n, k, at, b, c, alpha, beta);
}

void gemm_bt(std::int64_t m, std::int64_t n, std::int64_t k,
             std::span<const float> a, std::span<const float> b,
             std::span<float> c, float alpha, float beta) {
  std::vector<float> bt(static_cast<std::size_t>(k * n));
  for (std::int64_t j = 0; j < n; ++j) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      bt[static_cast<std::size_t>(kk * n + j)] =
          b[static_cast<std::size_t>(j * k + kk)];
    }
  }
  gemm(m, n, k, a, bt, c, alpha, beta);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  TDC_CHECK_MSG(a.rank() == 2 && b.rank() == 2, "matmul expects matrices");
  TDC_CHECK_MSG(a.dim(1) == b.dim(0), "matmul inner-dim mismatch");
  Tensor c({a.dim(0), b.dim(1)});
  gemm(a.dim(0), b.dim(1), a.dim(1), a.data(), b.data(), c.data());
  return c;
}

Tensor transpose2d(const Tensor& a) {
  TDC_CHECK_MSG(a.rank() == 2, "transpose2d expects a matrix");
  Tensor out({a.dim(1), a.dim(0)});
  for (std::int64_t i = 0; i < a.dim(0); ++i) {
    for (std::int64_t j = 0; j < a.dim(1); ++j) {
      out(j, i) = a(i, j);
    }
  }
  return out;
}

}  // namespace tdc
