#include "linalg/gemm.h"

#include <algorithm>
#include <vector>

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

#include "common/alloc_guard.h"
#include "common/annotations.h"
#include "common/check.h"
#include "common/deadline.h"
#include "common/parallel.h"

namespace tdc {

namespace {

// Cache-blocking parameters of the legacy saxpy-style kernel; modest sizes
// that fit L1/L2 on typical x86.
constexpr std::int64_t kBlockM = 64;
constexpr std::int64_t kBlockN = 64;
constexpr std::int64_t kBlockK = 256;

// BLIS-style packed micro-kernel geometry: MR×NR register tile, MC×KC packed
// A panel (L2-resident), KC×NC packed B panel (L3-resident).
constexpr std::int64_t kMr = 6;
constexpr std::int64_t kNr = 16;
constexpr std::int64_t kMc = 120;   // multiple of kMr
constexpr std::int64_t kKc = 256;
constexpr std::int64_t kNc = 1024;  // multiple of kNr

// C[MR×NR] += alpha · Ap·Bp where Ap is a packed MR×kc sliver (column-major
// slices of MR) and Bp a packed kc×NR sliver (row slices of NR).
#if defined(__AVX2__) && defined(__FMA__)
void micro_kernel(std::int64_t kc, const float* ap, const float* bp,
                  float alpha, float* c, std::int64_t ldc) {
  __m256 acc[kMr][2];
  for (int r = 0; r < kMr; ++r) {
    acc[r][0] = _mm256_setzero_ps();
    acc[r][1] = _mm256_setzero_ps();
  }
  for (std::int64_t kk = 0; kk < kc; ++kk) {
    const __m256 b0 = _mm256_loadu_ps(bp);
    const __m256 b1 = _mm256_loadu_ps(bp + 8);
    bp += kNr;
    for (int r = 0; r < kMr; ++r) {
      const __m256 a = _mm256_broadcast_ss(ap + r);
      acc[r][0] = _mm256_fmadd_ps(a, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(a, b1, acc[r][1]);
    }
    ap += kMr;
  }
  const __m256 va = _mm256_set1_ps(alpha);
  for (int r = 0; r < kMr; ++r) {
    float* crow = c + r * ldc;
    _mm256_storeu_ps(crow,
                     _mm256_fmadd_ps(acc[r][0], va, _mm256_loadu_ps(crow)));
    _mm256_storeu_ps(
        crow + 8, _mm256_fmadd_ps(acc[r][1], va, _mm256_loadu_ps(crow + 8)));
  }
}
#else
void micro_kernel(std::int64_t kc, const float* ap, const float* bp,
                  float alpha, float* c, std::int64_t ldc) {
  float acc[kMr][kNr] = {};
  for (std::int64_t kk = 0; kk < kc; ++kk) {
    for (int r = 0; r < kMr; ++r) {
      const float a = ap[r];
      for (int j = 0; j < kNr; ++j) {
        acc[r][j] += a * bp[j];
      }
    }
    ap += kMr;
    bp += kNr;
  }
  for (int r = 0; r < kMr; ++r) {
    float* crow = c + r * ldc;
    for (int j = 0; j < kNr; ++j) {
      crow[j] += alpha * acc[r][j];
    }
  }
}
#endif

// Packs A(ic0+0..mc, pc0+0..kc) into MR-row slivers, zero-padding the ragged
// final sliver. Transposition is folded into the (rs, cs) strides.
void pack_a(std::int64_t mc, std::int64_t kc, const float* a,
            std::int64_t rs, std::int64_t cs, float* dst) {
  for (std::int64_t i0 = 0; i0 < mc; i0 += kMr) {
    const std::int64_t rows = std::min<std::int64_t>(kMr, mc - i0);
    for (std::int64_t kk = 0; kk < kc; ++kk) {
      const float* col = a + i0 * rs + kk * cs;
      std::int64_t r = 0;
      for (; r < rows; ++r) {
        *dst++ = col[r * rs];
      }
      for (; r < kMr; ++r) {
        *dst++ = 0.0f;
      }
    }
  }
}

// Packs B(pc0+0..kc, jc0+0..nc) into NR-column slivers, zero-padded.
void pack_b(std::int64_t kc, std::int64_t nc, const float* b,
            std::int64_t rs, std::int64_t cs, float* dst) {
  for (std::int64_t j0 = 0; j0 < nc; j0 += kNr) {
    const std::int64_t cols = std::min<std::int64_t>(kNr, nc - j0);
    for (std::int64_t kk = 0; kk < kc; ++kk) {
      const float* row = b + kk * rs + j0 * cs;
      std::int64_t j = 0;
      for (; j < cols; ++j) {
        *dst++ = row[j * cs];
      }
      for (; j < kNr; ++j) {
        *dst++ = 0.0f;
      }
    }
  }
}

void scale_c(std::int64_t m, std::int64_t n, float* c, std::int64_t ldc,
             float beta) {
  if (beta == 1.0f) {
    return;
  }
  parallel_for(0, m, 64, [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t i = r0; i < r1; ++i) {
      float* row = c + i * ldc;
      if (beta == 0.0f) {
        std::fill(row, row + n, 0.0f);
      } else {
        for (std::int64_t j = 0; j < n; ++j) {
          row[j] *= beta;
        }
      }
    }
  });
}

// Padded row count of the packed-A format: every MR sliver is zero-filled to
// MR rows, and MC panel boundaries are MR-aligned, so the total is one
// round-up regardless of how panels split.
std::int64_t packed_a_rows(std::int64_t m) {
  return detail::divup(m, kMr) * kMr;
}

// Shared driver: C[M,N] = alpha·op(A)·op(B) + beta·C with op folded into the
// packing strides — A(i,kk) = a[i·a_rs + kk·a_cs], B(kk,j) = b[kk·b_rs + j·b_cs] —
// and a C row stride for writing into a band of a larger matrix. When
// `prepacked_a` is non-null it holds the pack_a output for every (pc, ic)
// block (the PackedGemmA layout) and the per-panel pack is skipped.
TDC_RUN_PATH void gemm_packed(std::int64_t m, std::int64_t n,
                              std::int64_t k,
                 const float* a, std::int64_t a_rs, std::int64_t a_cs,
                 const float* b, std::int64_t b_rs, std::int64_t b_cs,
                 float* cp, std::int64_t ldc, float alpha, float beta,
                 const float* prepacked_a = nullptr) {
  scale_c(m, n, cp, ldc, beta);
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0f) {
    return;
  }

  const std::int64_t pm = packed_a_rows(m);
  // Thread-local pack buffer: capacity only ever grows, so after first-touch
  // warm-up the steady state performs no heap allocation — which the armed
  // band guard below then enforces for everything inside the block walk.
  thread_local std::vector<float> bbuf;
  {
    AllowAllocScope warmup;
    // Grow-only warm-up of the thread-local B pack buffer.
    // tdc-lint: allow(run-path-alloc)
    bbuf.resize(static_cast<std::size_t>(
        kKc * std::min<std::int64_t>(detail::divup(n, kNr) * kNr, kNc)));
  }
  // bbuf is thread-local, so workers must read the caller's packed panel
  // through this captured pointer, not through their own thread's bbuf.
  float* const bpack = bbuf.data();
  DenyAllocGuard band_guard("gemm band");
  for (std::int64_t jc = 0; jc < n; jc += kNc) {
    const std::int64_t nc = std::min<std::int64_t>(kNc, n - jc);
    for (std::int64_t pc = 0; pc < k; pc += kKc) {
      // Cooperative cancellation between KC×NC bands: C holds only whole
      // completed band updates when this throws, and the caller's next run
      // rewrites C from scratch (beta pass), so no torn state survives.
      deadline_poll("gemm band");
      const std::int64_t kc = std::min<std::int64_t>(kKc, k - pc);
      pack_b(kc, nc, b + pc * b_rs + jc * b_cs, b_rs, b_cs, bpack);

      // One chunk per MC panel of rows; each worker packs its own A panel
      // (or reads the plan-time pack when one is supplied).
      const std::int64_t num_panels = detail::divup(m, kMc);
      parallel_for(0, num_panels, 1, [&](std::int64_t p0, std::int64_t p1) {
        thread_local std::vector<float> abuf;
        for (std::int64_t p = p0; p < p1; ++p) {
          const std::int64_t ic = p * kMc;
          const std::int64_t mc = std::min<std::int64_t>(kMc, m - ic);
          const float* apanel;
          if (prepacked_a != nullptr) {
            apanel = prepacked_a + pm * pc + ic * kc;
          } else {
            {
              // First-touch growth of the worker's pack buffer is the one
              // allowed allocation inside the guarded band.
              AllowAllocScope warmup;
              abuf.resize(  // tdc-lint: allow(run-path-alloc)
                  static_cast<std::size_t>(kMc * kKc));
            }
            pack_a(mc, kc, a + ic * a_rs + pc * a_cs, a_rs, a_cs, abuf.data());
            apanel = abuf.data();
          }
          for (std::int64_t jr = 0; jr < nc; jr += kNr) {
            const std::int64_t nr = std::min<std::int64_t>(kNr, nc - jr);
            const float* bp = bpack + (jr / kNr) * kc * kNr;
            for (std::int64_t ir = 0; ir < mc; ir += kMr) {
              const std::int64_t mr = std::min<std::int64_t>(kMr, mc - ir);
              const float* ap = apanel + (ir / kMr) * kc * kMr;
              float* ctile = cp + (ic + ir) * ldc + jc + jr;
              if (mr == kMr && nr == kNr) {
                micro_kernel(kc, ap, bp, alpha, ctile, ldc);
              } else {
                // Ragged edge: run the kernel on a zeroed MR×NR scratch tile
                // and accumulate only the live entries.
                float tmp[kMr * kNr] = {};
                micro_kernel(kc, ap, bp, alpha, tmp, kNr);
                for (std::int64_t i = 0; i < mr; ++i) {
                  for (std::int64_t j = 0; j < nr; ++j) {
                    ctile[i * ldc + j] += tmp[i * kNr + j];
                  }
                }
              }
            }
          }
        }
      });
    }
  }
}

}  // namespace

void gemm(std::int64_t m, std::int64_t n, std::int64_t k,
          std::span<const float> a, std::span<const float> b,
          std::span<float> c, float alpha, float beta) {
  TDC_CHECK(static_cast<std::int64_t>(a.size()) >= m * k);
  TDC_CHECK(static_cast<std::int64_t>(b.size()) >= k * n);
  TDC_CHECK(static_cast<std::int64_t>(c.size()) >= m * n);
  gemm_packed(m, n, k, a.data(), k, 1, b.data(), n, 1, c.data(), n, alpha,
              beta);
}

void gemm_at(std::int64_t m, std::int64_t n, std::int64_t k,
             std::span<const float> a, std::span<const float> b,
             std::span<float> c, float alpha, float beta) {
  TDC_CHECK(static_cast<std::int64_t>(a.size()) >= k * m);
  TDC_CHECK(static_cast<std::int64_t>(b.size()) >= k * n);
  TDC_CHECK(static_cast<std::int64_t>(c.size()) >= m * n);
  // A is stored [K, M]; reading it as A^T is a stride swap in the packing.
  gemm_packed(m, n, k, a.data(), 1, m, b.data(), n, 1, c.data(), n, alpha,
              beta);
}

void gemm_bt(std::int64_t m, std::int64_t n, std::int64_t k,
             std::span<const float> a, std::span<const float> b,
             std::span<float> c, float alpha, float beta) {
  TDC_CHECK(static_cast<std::int64_t>(a.size()) >= m * k);
  TDC_CHECK(static_cast<std::int64_t>(b.size()) >= n * k);
  TDC_CHECK(static_cast<std::int64_t>(c.size()) >= m * n);
  // B is stored [N, K]; reading it as B^T is a stride swap in the packing.
  gemm_packed(m, n, k, a.data(), k, 1, b.data(), 1, k, c.data(), n, alpha,
              beta);
}

void gemm_strided(std::int64_t m, std::int64_t n, std::int64_t k,
                  const float* a, std::int64_t a_rs, std::int64_t a_cs,
                  const float* b, std::int64_t b_rs, std::int64_t b_cs,
                  float* c, std::int64_t ldc, float alpha, float beta) {
  gemm_packed(m, n, k, a, a_rs, a_cs, b, b_rs, b_cs, c, ldc, alpha, beta);
}

PackedGemmA pack_gemm_a(std::int64_t m, std::int64_t k, const float* a,
                        std::int64_t a_rs, std::int64_t a_cs) {
  TDC_CHECK(m >= 1 && k >= 1);
  PackedGemmA packed;
  packed.m_ = m;
  packed.k_ = k;
  const std::int64_t pm = packed_a_rows(m);
  // Weight pre-packing happens at plan-compile time, not while serving.
  packed.panels_.resize(  // tdc-lint: allow(run-path-alloc)
      static_cast<std::size_t>(pm * k));
  // Same (pc, ic) block walk as the driver, so offsets line up exactly:
  // the panel for K-block pc and row panel ic starts at pm·pc + ic·kc.
  for (std::int64_t pc = 0; pc < k; pc += kKc) {
    const std::int64_t kc = std::min<std::int64_t>(kKc, k - pc);
    for (std::int64_t ic = 0; ic < m; ic += kMc) {
      const std::int64_t mc = std::min<std::int64_t>(kMc, m - ic);
      pack_a(mc, kc, a + ic * a_rs + pc * a_cs, a_rs, a_cs,
             packed.panels_.data() + pm * pc + ic * kc);
    }
  }
  return packed;
}

void gemm_prepacked(const PackedGemmA& a, std::int64_t n, const float* b,
                    std::int64_t b_rs, std::int64_t b_cs, float* c,
                    std::int64_t ldc, float alpha, float beta) {
  TDC_CHECK_MSG(!a.empty(), "gemm_prepacked on an empty PackedGemmA");
  gemm_packed(a.m_, n, a.k_, /*a=*/nullptr, 0, 0, b, b_rs, b_cs, c, ldc,
              alpha, beta, a.panels_.data());
}

void gemm_blocked(std::int64_t m, std::int64_t n, std::int64_t k,
                  std::span<const float> a, std::span<const float> b,
                  std::span<float> c, float alpha, float beta) {
  TDC_CHECK(static_cast<std::int64_t>(a.size()) >= m * k);
  TDC_CHECK(static_cast<std::int64_t>(b.size()) >= k * n);
  TDC_CHECK(static_cast<std::int64_t>(c.size()) >= m * n);

  scale_c(m, n, c.data(), n, beta);

  parallel_for(0, detail::divup(m, kBlockM), 1,
               [&](std::int64_t blk0, std::int64_t blk1) {
    for (std::int64_t blk = blk0; blk < blk1; ++blk) {
      const std::int64_t i0 = blk * kBlockM;
      const std::int64_t i_max = std::min(i0 + kBlockM, m);
      for (std::int64_t k0 = 0; k0 < k; k0 += kBlockK) {
        const std::int64_t k_max = std::min(k0 + kBlockK, k);
        for (std::int64_t j0 = 0; j0 < n; j0 += kBlockN) {
          const std::int64_t j_max = std::min(j0 + kBlockN, n);
          for (std::int64_t i = i0; i < i_max; ++i) {
            for (std::int64_t kk = k0; kk < k_max; ++kk) {
              const float aik = alpha * a[static_cast<std::size_t>(i * k + kk)];
              const float* brow = &b[static_cast<std::size_t>(kk * n)];
              float* crow = &c[static_cast<std::size_t>(i * n)];
              for (std::int64_t j = j0; j < j_max; ++j) {
                crow[j] += aik * brow[j];
              }
            }
          }
        }
      }
    }
  });
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  TDC_CHECK_MSG(a.rank() == 2 && b.rank() == 2, "matmul expects matrices");
  TDC_CHECK_MSG(a.dim(1) == b.dim(0), "matmul inner-dim mismatch");
  Tensor c({a.dim(0), b.dim(1)});
  gemm(a.dim(0), b.dim(1), a.dim(1), a.data(), b.data(), c.data());
  return c;
}

Tensor transpose2d(const Tensor& a) {
  TDC_CHECK_MSG(a.rank() == 2, "transpose2d expects a matrix");
  constexpr std::int64_t kTile = 32;
  const std::int64_t rows = a.dim(0);
  const std::int64_t cols = a.dim(1);
  Tensor out({cols, rows});
  const float* src = a.raw();
  float* dst = out.raw();
  for (std::int64_t i0 = 0; i0 < rows; i0 += kTile) {
    const std::int64_t i_max = std::min(i0 + kTile, rows);
    for (std::int64_t j0 = 0; j0 < cols; j0 += kTile) {
      const std::int64_t j_max = std::min(j0 + kTile, cols);
      for (std::int64_t i = i0; i < i_max; ++i) {
        for (std::int64_t j = j0; j < j_max; ++j) {
          dst[j * rows + i] = src[i * cols + j];
        }
      }
    }
  }
  return out;
}

}  // namespace tdc
