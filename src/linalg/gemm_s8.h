// Packed, register-tiled int8 GEMM — the quantized serving kernel.
//
// The fp32 engine (linalg/gemm.h) drives a 6×16 FMA micro-kernel; this is
// its 8-bit sibling for the quantized serving path: signed-int8 weights
// against unsigned-int8 activations, accumulated exactly in int32 through a
// `_mm256_maddubs_epi16` + `_mm256_madd_epi16` micro-kernel (AVX2), a
// single-instruction `_mm256_dpbusd_epi32` variant where AVX-512 VNNI is
// available, or a scalar tile (generic builds). All three tiers perform the
// identical exact integer arithmetic, so they are bit-identical to each
// other.
//
// Quantization contract (what makes the arithmetic *exact*):
//
//   * A holds weights as signed int8 in [-127, 127] (symmetric, per-row
//     scales chosen by the caller).
//   * B holds activations as unsigned int8 in [0, 127] — a deliberate
//     7-bit activation domain. maddubs saturates its int16 pair sums, and
//     127·127·2 = 32258 < 32767, so with 7-bit activations the pair sums
//     can never saturate: every accumulation is exact integer arithmetic,
//     the scalar fallback is bit-identical to the AVX2 kernel, and results
//     are bit-identical across thread counts (integer addition reorders
//     freely).
//
// The packed layout is k-quad interleaved: B panels store, per 16-column
// sliver, 4 consecutive k's per column per 32-bit lane, so one maddubs +
// madd pair reduces a full k-quad per column with no cross-column mixing;
// A slivers store the matching 4-byte weight quads per row for a single
// vpbroadcastd. K is zero-padded to a multiple of 4 in both packs (padding
// contributes 0·0 terms, so it never perturbs the sum or the zero-point
// correction).
//
// Zero-point handling: for asymmetric activations x_q = x/s_x + zp, the
// driver computes Σ x_q·w_q − zp · Σ w_q using per-row weight sums captured
// at pack time, so C holds Σ (x_q − zp)·w_q exactly.
#pragma once

#include <cstdint>
#include <vector>

namespace tdc {

/// Weight panels packed once into the int8 micro-kernel's k-quad sliver
/// format, plus the per-row weight sums the zero-point correction needs.
/// The mirror of PackedGemmA for the quantized path: a convolution plan
/// packs its quantized weight matrix at compile time and every
/// gemm_prepacked_s8u8 call skips the pack entirely.
class PackedGemmAS8 {
 public:
  PackedGemmAS8() = default;
  std::int64_t rows() const { return m_; }
  std::int64_t depth() const { return k_; }
  bool empty() const { return panels_.empty(); }
  /// Per-row Σ_k A(i,k), for the caller's own zero-point math if needed.
  const std::int32_t* row_sums() const { return row_sums_.data(); }

 private:
  friend PackedGemmAS8 pack_gemm_a_s8(std::int64_t m, std::int64_t k,
                                      const std::int8_t* a, std::int64_t a_rs,
                                      std::int64_t a_cs);
  friend void gemm_prepacked_s8u8(const PackedGemmAS8& a, std::int64_t n,
                                  const std::uint8_t* b, std::int64_t ldb,
                                  std::int32_t b_zero_point, std::int32_t* c,
                                  std::int64_t ldc);
  std::int64_t m_ = 0;
  std::int64_t k_ = 0;
  std::vector<std::int8_t> panels_;
  std::vector<std::int32_t> row_sums_;
};

/// Packs A (A(i,kk) = a[i·a_rs + kk·a_cs], so transposes are stride swaps)
/// for reuse across many gemm_prepacked_s8u8 calls. Values must already be
/// quantized to [-127, 127] (see exec/quantize.h for the chooser).
PackedGemmAS8 pack_gemm_a_s8(std::int64_t m, std::int64_t k,
                             const std::int8_t* a, std::int64_t a_rs,
                             std::int64_t a_cs);

/// C[i·ldc + j] = Σ_k A(i,k) · (B[k·ldb + j] − b_zero_point), exactly, in
/// int32. B is a row-major unsigned-int8 matrix with values in [0, 127]
/// (the 7-bit activation domain) and `b_zero_point` its quantization zero
/// point (also in [0, 127]). C is overwritten. Allocation-free after
/// thread-local pack-buffer warm-up, deadline-polled between cache bands,
/// bit-identical across thread counts and between the AVX2 and scalar
/// kernels.
void gemm_prepacked_s8u8(const PackedGemmAS8& a, std::int64_t n,
                         const std::uint8_t* b, std::int64_t ldb,
                         std::int32_t b_zero_point, std::int32_t* c,
                         std::int64_t ldc);

// ---------------------------------------------------------------------------
// Requantization epilogues over the int32 accumulator. All of them compute
//
//   q = round_to_nearest_even(acc[i·ldc + j] · multiplier[i]) + zero_point
//
// with a per-row (per-output-channel) float multiplier, then saturate to the
// target domain. Round-to-nearest-even is exact-by-construction on both
// paths: the AVX2 epilogue uses _mm256_cvtps_epi32 (RNE under the default
// MXCSR) and the scalar one std::nearbyintf (RNE under the default
// fenv), over the identical float product. Allocation-free, deterministic.

/// Saturating int8 requantization: q clamped to [-128, 127].
void requantize_s8(const std::int32_t* acc, std::int64_t m, std::int64_t n,
                   std::int64_t ldc, const float* multiplier,
                   std::int32_t zero_point, std::int8_t* out,
                   std::int64_t ldo);

/// Saturating uint8 requantization into the 7-bit activation domain:
/// q clamped to [0, 127] — the form chained quantized GEMM stages consume.
void requantize_u8(const std::int32_t* acc, std::int64_t m, std::int64_t n,
                   std::int64_t ldc, const float* multiplier,
                   std::int32_t zero_point, std::uint8_t* out,
                   std::int64_t ldo);

/// Dequantization to fp32: out = acc · multiplier[i] (no rounding, no
/// clamp) — the epilogue of a quantized chain's final stage.
void dequantize_f32(const std::int32_t* acc, std::int64_t m, std::int64_t n,
                    std::int64_t ldc, const float* multiplier, float* out,
                    std::int64_t ldo);

}  // namespace tdc
