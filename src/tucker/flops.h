// Storage / FLOPs accounting for Tucker-format convolutions (paper Eqs. 5–6).
#pragma once

#include "conv/conv_shape.h"
#include "tucker/tucker.h"

namespace tdc {

/// Parameter count of the decomposed layer: C·D1 + R·S·D1·D2 + N·D2.
double tucker_params(const ConvShape& shape, TuckerRanks ranks);

/// FLOPs of the three-stage pipeline (multiply–add ×2):
/// H·W·C·D1 + H'·W'·R·S·D1·D2 + H'·W'·N·D2, each term doubled.
double tucker_flops(const ConvShape& shape, TuckerRanks ranks);

/// γP (Eq. 5): original params / decomposed params.
double params_reduction_ratio(const ConvShape& shape, TuckerRanks ranks);

/// γF (Eq. 6): original FLOPs / decomposed FLOPs.
double flops_reduction_ratio(const ConvShape& shape, TuckerRanks ranks);

/// Shape of the core convolution stage: (D1 → D2, same spatial geometry,
/// same R×S/pad/stride as the original layer).
ConvShape core_conv_shape(const ConvShape& shape, TuckerRanks ranks);

/// Shape of the first 1×1 stage (C → D1 over the input image).
ConvShape first_pointwise_shape(const ConvShape& shape, TuckerRanks ranks);

/// Shape of the last 1×1 stage (D2 → N over the output image).
ConvShape last_pointwise_shape(const ConvShape& shape, TuckerRanks ranks);

}  // namespace tdc
