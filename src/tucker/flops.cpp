#include "tucker/flops.h"

#include "common/check.h"

namespace tdc {

double tucker_params(const ConvShape& shape, TuckerRanks ranks) {
  TDC_CHECK(ranks.d1 >= 1 && ranks.d2 >= 1);
  return static_cast<double>(shape.c) * static_cast<double>(ranks.d1) +
         static_cast<double>(shape.r) * static_cast<double>(shape.s) *
             static_cast<double>(ranks.d1) * static_cast<double>(ranks.d2) +
         static_cast<double>(shape.n) * static_cast<double>(ranks.d2);
}

double tucker_flops(const ConvShape& shape, TuckerRanks ranks) {
  return first_pointwise_shape(shape, ranks).flops() +
         core_conv_shape(shape, ranks).flops() +
         last_pointwise_shape(shape, ranks).flops();
}

double params_reduction_ratio(const ConvShape& shape, TuckerRanks ranks) {
  return shape.params() / tucker_params(shape, ranks);
}

double flops_reduction_ratio(const ConvShape& shape, TuckerRanks ranks) {
  return shape.flops() / tucker_flops(shape, ranks);
}

ConvShape core_conv_shape(const ConvShape& shape, TuckerRanks ranks) {
  ConvShape core = shape;
  core.c = ranks.d1;
  core.n = ranks.d2;
  return core;
}

ConvShape first_pointwise_shape(const ConvShape& shape, TuckerRanks ranks) {
  // 1×1 over the *input* image; stride/pad stay on the core stage.
  ConvShape pw;
  pw.c = shape.c;
  pw.n = ranks.d1;
  pw.h = shape.h;
  pw.w = shape.w;
  return pw;
}

ConvShape last_pointwise_shape(const ConvShape& shape, TuckerRanks ranks) {
  // 1×1 over the *output* image.
  ConvShape pw;
  pw.c = ranks.d2;
  pw.n = shape.n;
  pw.h = shape.out_h();
  pw.w = shape.out_w();
  return pw;
}

}  // namespace tdc
