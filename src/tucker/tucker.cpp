#include "tucker/tucker.h"

#include <algorithm>

#include "common/check.h"
#include "linalg/gemm.h"
#include "linalg/svd.h"
#include "tensor/unfold.h"

namespace tdc {

TuckerFactors tucker_decompose(const Tensor& kernel_cnrs, TuckerRanks ranks) {
  TDC_CHECK_MSG(kernel_cnrs.rank() == 4, "kernel must be rank-4 CNRS");
  const std::int64_t c = kernel_cnrs.dim(0);
  const std::int64_t n = kernel_cnrs.dim(1);
  TDC_CHECK_MSG(ranks.d1 >= 1 && ranks.d1 <= c, "d1 out of range");
  TDC_CHECK_MSG(ranks.d2 >= 1 && ranks.d2 <= n, "d2 out of range");

  TuckerFactors f;
  // Mode-0 (input channel) and mode-1 (output channel) unfoldings; paper
  // modes 1 and 2 in 1-based numbering.
  f.u1 = leading_left_singular_vectors(unfold_mode(kernel_cnrs, 0), ranks.d1);
  f.u2 = leading_left_singular_vectors(unfold_mode(kernel_cnrs, 1), ranks.d2);

  // Core = K ×_0 U1^T ×_1 U2^T. mode_product contracts with A as [in, out],
  // so passing U1 ([C, D1]) directly gives Σ_c K(c,...)·U1(c,d1).
  Tensor tmp = mode_product(kernel_cnrs, f.u1, 0);
  f.core = mode_product(tmp, f.u2, 1);
  return f;
}

Tensor tucker_reconstruct(const TuckerFactors& f) {
  TDC_CHECK_MSG(f.core.rank() == 4, "core must be rank-4 [D1,D2,R,S]");
  TDC_CHECK_MSG(f.u1.rank() == 2 && f.u2.rank() == 2, "factors must be matrices");
  TDC_CHECK_MSG(f.u1.dim(1) == f.core.dim(0), "U1/core rank mismatch");
  TDC_CHECK_MSG(f.u2.dim(1) == f.core.dim(1), "U2/core rank mismatch");
  // K = Core ×_0 U1 ×_1 U2; mode_product contracts the tensor mode against
  // the first matrix dim, so transpose the factors.
  Tensor tmp = mode_product(f.core, transpose2d(f.u1), 0);
  return mode_product(tmp, transpose2d(f.u2), 1);
}

Tensor tucker_project(const Tensor& kernel_cnrs, TuckerRanks ranks) {
  return tucker_reconstruct(tucker_decompose(kernel_cnrs, ranks));
}

double tucker_projection_error(const Tensor& kernel_cnrs, TuckerRanks ranks) {
  const Tensor approx = tucker_project(kernel_cnrs, ranks);
  return Tensor::rel_error(approx, kernel_cnrs);
}

TuckerRanks tucker_latent_ranks(const Tensor& kernel_cnrs, double tol) {
  TDC_CHECK_MSG(kernel_cnrs.rank() == 4, "kernel must be rank-4 CNRS");
  TuckerRanks out;
  for (int mode = 0; mode < 2; ++mode) {
    const std::vector<double> sv =
        left_singular_values(unfold_mode(kernel_cnrs, mode));
    const double largest = sv.empty() ? 0.0 : sv.front();
    std::int64_t rank = 0;
    for (const double s : sv) {
      if (s > tol * largest && largest > 0.0) {
        ++rank;
      }
    }
    // An all-zero (or numerically dead) unfolding has no singular value
    // above the threshold; clamp to 1 so the result always satisfies
    // tucker_decompose's d1/d2 >= 1 precondition.
    (mode == 0 ? out.d1 : out.d2) = std::max<std::int64_t>(rank, 1);
  }
  return out;
}

}  // namespace tdc
