// Tucker-2 decomposition of convolution kernels (paper Section 3).
//
// A kernel K ∈ R^{C×N×R×S} (CNRS order) is decomposed along the channel modes
// only, preserving the spatial modes:
//   K(c,n,r,s) = Σ_{d1,d2} Core(d1,d2,r,s) · U1(c,d1) · U2(n,d2)     (Eq. 1)
// yielding the three-stage convolution pipeline 1×1 (C→D1) → R×S core
// (D1→D2) → 1×1 (D2→N) (Eqs. 2–4).
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace tdc {

/// Tucker ranks [D1, D2] for the two channel modes.
struct TuckerRanks {
  std::int64_t d1 = 0;  ///< latent input channels of the core convolution
  std::int64_t d2 = 0;  ///< latent output channels of the core convolution
  bool operator==(const TuckerRanks&) const = default;
};

/// The decomposed components of a convolution kernel.
struct TuckerFactors {
  Tensor core;  ///< [D1, D2, R, S]
  Tensor u1;    ///< [C, D1]  (input-channel factor)
  Tensor u2;    ///< [N, D2]  (output-channel factor)

  TuckerRanks ranks() const { return {u1.dim(1), u2.dim(1)}; }
};

/// Truncated HOSVD of a CNRS kernel tensor at the given channel ranks:
/// U1 = leading D1 left singular vectors of the mode-C unfolding, U2 likewise
/// for mode-N, Core = K ×_C U1^T ×_N U2^T. Requires 1 <= d1 <= C, 1 <= d2 <= N.
TuckerFactors tucker_decompose(const Tensor& kernel_cnrs, TuckerRanks ranks);

/// Reconstruct the (approximate) CNRS kernel: Core ×_1 U1 ×_2 U2 (Eq. 1).
Tensor tucker_reconstruct(const TuckerFactors& f);

/// Project a CNRS kernel tensor to the set of tensors with Tucker ranks at
/// most `ranks` (the K̂-update of the ADMM loop, Eq. 12): decompose then
/// reconstruct.
Tensor tucker_project(const Tensor& kernel_cnrs, TuckerRanks ranks);

/// Relative Frobenius approximation error of the projection at given ranks.
double tucker_projection_error(const Tensor& kernel_cnrs, TuckerRanks ranks);

/// Latent Tucker ranks of a kernel: the number of singular values of each
/// channel-mode unfolding above `tol` relative to the largest one, clamped
/// to >= 1 (an all-zero kernel still has valid rank-(1,1) factors), so the
/// result is always accepted by tucker_decompose.
TuckerRanks tucker_latent_ranks(const Tensor& kernel_cnrs, double tol = 1e-6);

}  // namespace tdc
