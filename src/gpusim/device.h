// GPU device descriptors for the performance simulator.
//
// The paper evaluates on an NVIDIA A100 (108 SMs, Ampere) and a GTX 2080 Ti
// (68 SMs, Turing). With no GPU in this environment, the evaluation runs on
// an analytical execution-model simulator parameterized by these descriptors
// (see DESIGN.md, "Hardware substitution"). Published datasheet numbers are
// used for every physical quantity; the last few fields are microarchitecture
// calibration constants for the latency model.
#pragma once

#include <cstdint>
#include <string>

namespace tdc {

struct DeviceSpec {
  std::string name;

  // --- Physical resources (datasheet values) ---
  int sms = 1;                           ///< streaming multiprocessors
  int max_threads_per_sm = 2048;         ///< resident thread limit per SM
  int max_threads_per_block = 1024;
  int max_blocks_per_sm = 32;
  std::int64_t shared_mem_per_sm = 0;    ///< bytes
  std::int64_t shared_mem_per_block = 0; ///< bytes (max opt-in carve-out)
  std::int64_t regs_per_sm = 65536;      ///< 32-bit registers
  int max_regs_per_thread = 255;
  double peak_flops = 0.0;               ///< FP32 FLOP/s
  double mem_bandwidth = 0.0;            ///< DRAM bytes/s
  double l2_bandwidth = 0.0;             ///< L2 bytes/s (atomics resolve here)
  std::int64_t l2_capacity_bytes = 0;    ///< working sets below this re-read from L2
  int warp_size = 32;

  // --- Latency-model calibration constants ---
  double launch_overhead_s = 4e-6;   ///< per-kernel launch + teardown
  /// Warp-instruction streams (warps × per-thread ILP) needed to saturate
  /// the FP32 pipes of one SM.
  double saturation_streams = 32.0;
  /// A single warp can issue at most one FMA warp-instruction per cycle;
  /// `warps_for_issue` of them are needed to keep every FP32 lane busy.
  double warps_for_issue = 2.0;
  /// Resident warps per SM needed to saturate DRAM bandwidth.
  double warps_to_saturate_bw = 8.0;
  double sync_latency_s = 2.5e-8;    ///< one __syncthreads barrier
  /// Exposed wait for one dependent cooperative load (barrier-load-barrier
  /// with no double buffering): roughly an L2/DRAM round trip.
  double load_stall_s = 2.0e-7;
  /// Extra bandwidth multiplier paid by atomic read-modify-write traffic.
  double atomic_penalty = 2.0;
  /// Fraction of tilings kept after the compute-latency sort in the paper's
  /// analytical tiling model (Section 5.5: 5 % on A100, 15 % on 2080Ti).
  double model_top_fraction = 0.05;

  /// Total resident threads across the device (the paper's GPU_ths).
  std::int64_t total_threads() const {
    return static_cast<std::int64_t>(sms) * max_threads_per_sm;
  }
  double peak_flops_per_sm() const { return peak_flops / sms; }
};

/// NVIDIA A100-SXM4-80GB (Ampere, GA100).
DeviceSpec make_a100();

/// NVIDIA GeForce RTX 2080 Ti (Turing, TU102).
DeviceSpec make_rtx2080ti();

/// Lookup by name ("a100" or "2080ti"); throws on unknown names.
DeviceSpec device_by_name(const std::string& name);

}  // namespace tdc
