// Latency adapters for the library baselines (the cuDNN stand-ins).
//
// Each adapter describes the kernels a library implementation would launch
// for a given convolution problem — their grids, block resources, FLOPs
// (including tile-padding waste, which is the root of the batch-1
// under-utilization the paper reports), and global-memory traffic — and
// feeds them to gpusim::simulate_latency. Tile menus follow the documented
// blocking of the corresponding cuDNN algorithms; where cuDNN would choose
// among several internal kernels, the adapter picks the fastest, which is
// what the library's own heuristics approximate.
#pragma once

#include <vector>

#include "conv/conv.h"
#include "conv/conv_shape.h"
#include "gpusim/launch.h"

namespace tdc {

/// cuDNN IMPLICIT_GEMM: one fused GEMM kernel over the implicit
/// [N, C·R·S] × [C·R·S, H'·W'] product, with a menu of CTA tiles.
LatencyBreakdown cudnn_implicit_gemm_cost(const DeviceSpec& device,
                                          const ConvShape& shape);

/// cuDNN WINOGRAD (non-fused F(2×2, 3×3)): input transform, 16 batched
/// transform-domain GEMMs, output transform — three kernels. Requires a
/// 3×3 stride-1 problem.
LatencyBreakdown cudnn_winograd_cost(const DeviceSpec& device,
                                     const ConvShape& shape);

/// cuDNN FFT: forward FFT of input channels, forward FFT of all C·N filter
/// planes, frequency-domain multiply-accumulate, inverse FFT of output
/// channels — four kernels on power-of-two-padded planes. Stride 1 only.
LatencyBreakdown cudnn_fft_cost(const DeviceSpec& device,
                                const ConvShape& shape);

/// Dispatch on the algorithm id (same restrictions as the functional
/// implementations in src/conv).
LatencyBreakdown library_conv_cost(ConvAlgo algo, const DeviceSpec& device,
                                   const ConvShape& shape);

/// Memory-bound elementwise/pooling-style layer over `elems_in` inputs and
/// `elems_out` outputs (ReLU, bias, batch-norm inference, residual add,
/// pooling). One kernel.
LatencyBreakdown elementwise_cost(const DeviceSpec& device, double elems_in,
                                  double elems_out);

/// Fully-connected layer y = W·x (batch 1): bandwidth-bound on the weight
/// matrix.
LatencyBreakdown fully_connected_cost(const DeviceSpec& device,
                                      std::int64_t in_features,
                                      std::int64_t out_features);

}  // namespace tdc
