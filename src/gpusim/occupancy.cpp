#include "gpusim/occupancy.h"

#include <algorithm>

#include "common/check.h"

namespace tdc {

int round_up_to_warp(const DeviceSpec& device, int threads) {
  const int w = device.warp_size;
  return ((threads + w - 1) / w) * w;
}

OccupancyResult compute_occupancy(const DeviceSpec& device,
                                  const BlockResources& block) {
  OccupancyResult out;
  TDC_CHECK(block.threads >= 1);
  TDC_CHECK(block.shared_bytes >= 0);
  TDC_CHECK(block.regs_per_thread >= 1);

  if (block.threads > device.max_threads_per_block ||
      block.shared_bytes > device.shared_mem_per_block ||
      block.regs_per_thread > device.max_regs_per_thread) {
    out.launchable = false;
    out.limiter = "unlaunchable";
    return out;
  }

  const int warp_threads = round_up_to_warp(device, block.threads);

  const int by_threads = device.max_threads_per_sm / warp_threads;
  const int by_blocks = device.max_blocks_per_sm;
  const int by_smem =
      block.shared_bytes == 0
          ? device.max_blocks_per_sm
          : static_cast<int>(device.shared_mem_per_sm / block.shared_bytes);
  // Register allocation granularity is per-warp on real hardware; the
  // per-thread approximation is accurate enough for this model.
  const std::int64_t regs_per_block =
      static_cast<std::int64_t>(warp_threads) * block.regs_per_thread;
  const int by_regs = static_cast<int>(device.regs_per_sm / regs_per_block);

  int blocks = by_threads;
  out.limiter = "threads";
  if (by_blocks < blocks) {
    blocks = by_blocks;
    out.limiter = "blocks";
  }
  if (by_smem < blocks) {
    blocks = by_smem;
    out.limiter = "smem";
  }
  if (by_regs < blocks) {
    blocks = by_regs;
    out.limiter = "regs";
  }

  if (blocks < 1) {
    out.launchable = false;
    out.limiter = "unlaunchable";
    return out;
  }

  out.launchable = true;
  out.blocks_per_sm = blocks;
  out.occupancy = static_cast<double>(blocks) * warp_threads /
                  static_cast<double>(device.max_threads_per_sm);
  return out;
}

}  // namespace tdc
