#include "gpusim/library_cost.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "fft/fft.h"

namespace tdc {

namespace {

double ceil_div_d(double a, double b) { return std::ceil(a / b); }

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

struct GemmTile {
  int m, n, k, threads;
};

}  // namespace

LatencyBreakdown cudnn_implicit_gemm_cost(const DeviceSpec& device,
                                          const ConvShape& shape) {
  TDC_CHECK_MSG(shape.valid(), "invalid shape");
  // Implicit GEMM dimensions: M = output channels, N = output pixels across
  // the batch, K = C·R·S (gathered on the fly from the input tensor).
  const double m = static_cast<double>(shape.n);
  const double n = static_cast<double>(shape.batch) *
                   static_cast<double>(shape.out_h() * shape.out_w());
  const double k =
      static_cast<double>(shape.c * shape.r * shape.s);

  // cuDNN's fixed CTA tile menu for SGEMM-style kernels. Implicit-GEMM CTAs
  // are large (the library targets training-scale batches); there is no
  // small-tile variant, which is exactly why batch-1 Tucker shapes
  // under-utilize it (paper Sections 1 and 5, Figure 6's cuDNN-GEMM bars).
  const std::vector<GemmTile> tiles = {{128, 128, 8, 256}, {128, 64, 8, 128}};

  LatencyBreakdown best;
  best.total_s = -1.0;
  for (const auto& t : tiles) {
    KernelLaunch l;
    l.label = "cudnn-implicit-gemm";
    l.num_blocks = static_cast<std::int64_t>(ceil_div_d(m, t.m)) *
                   static_cast<std::int64_t>(ceil_div_d(n, t.n));
    l.block.threads = t.threads;
    // Double-buffered A/B tiles in shared memory.
    l.block.shared_bytes = 2LL * (t.m + t.n) * t.k * 4;
    l.block.regs_per_thread =
        std::min(device.max_regs_per_thread,
                 32 + (t.m * t.n) / t.threads);  // register C-tile
    // Padded-tile arithmetic: every CTA computes a full m×n tile over the
    // whole (padded) K extent — the under-utilization waste for small
    // problems is exactly this rounding.
    const double k_padded = ceil_div_d(k, t.k) * t.k;
    l.flops_per_block = 2.0 * t.m * t.n * k_padded;
    // Each CTA streams its A and B tile panels; panel re-reads across CTA
    // rows/columns are L2 hits when the operands fit. The implicit-GEMM "B"
    // operand is gathered from the input image, whose unique footprint is
    // the image itself.
    const double total_panels =
        static_cast<double>(l.num_blocks) * (t.m + t.n) * k_padded * 4.0;
    const double unique_a = m * k * 4.0;  // weights
    const double unique_b = static_cast<double>(shape.batch) *
                            static_cast<double>(shape.c) *
                            static_cast<double>((shape.h + 2 * shape.pad_h) *
                                                (shape.w + 2 * shape.pad_w)) *
                            4.0;
    add_reread_traffic(device, total_panels, unique_a + unique_b, &l);
    l.bytes_written = m * n * 4.0;
    l.sync_count = static_cast<std::int64_t>(ceil_div_d(k_padded, t.k)) * 2;
    l.dependent_stalls = 2;  // double-buffered panel pipeline: fill only
    l.ilp = 8.0;               // register-blocked FMA tiles
    l.compute_efficiency = 0.85;  // library kernel issue efficiency

    const LatencyBreakdown b = simulate_latency(device, l);
    if (best.total_s < 0.0 || b.total_s < best.total_s) {
      best = b;
    }
  }
  return best;
}

LatencyBreakdown cudnn_winograd_cost(const DeviceSpec& device,
                                     const ConvShape& shape) {
  TDC_CHECK_MSG(conv_algo_supports(ConvAlgo::kWinograd, shape),
                "winograd cost requires 3x3 stride-1: " + shape.to_string());
  const double c = static_cast<double>(shape.c);
  const double n = static_cast<double>(shape.n);
  const double tiles = static_cast<double>(shape.batch) *
                       ceil_div_d(static_cast<double>(shape.out_h()), 2.0) *
                       ceil_div_d(static_cast<double>(shape.out_w()), 2.0);

  std::vector<KernelLaunch> seq;

  // 1) Input transform: one 4×4 tile per (c, tile); memory-dominated, writes
  //    the 16-plane transform-domain tensor.
  {
    KernelLaunch l;
    l.label = "wino-input-transform";
    const double items = c * tiles;
    l.block.threads = 256;
    l.num_blocks = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(ceil_div_d(items, 256.0)));
    l.block.regs_per_thread = 48;
    l.flops_per_block = 256.0 * 64.0;  // ~32 adds ×2 per tile transform
    l.bytes_read = static_cast<double>(shape.batch) * c *
                   static_cast<double>(shape.h * shape.w) * 4.0;
    l.bytes_written = 16.0 * c * tiles * 4.0;
    l.ilp = 4.0;
    seq.push_back(l);
  }

  // 2) Filter transform: (c, n) 3×3 -> 4×4 tiles. cuDNN recomputes this on
  //    every call (inference frameworks cache it, raw cuDNN does not).
  {
    KernelLaunch l;
    l.label = "wino-filter-transform";
    const double items = c * n;
    l.block.threads = 256;
    l.num_blocks = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(ceil_div_d(items, 256.0)));
    l.block.regs_per_thread = 48;
    l.flops_per_block = 256.0 * 84.0;
    l.bytes_read = c * n * 9.0 * 4.0;
    l.bytes_written = 16.0 * c * n * 4.0;
    l.ilp = 4.0;
    seq.push_back(l);
  }

  // 3) Batched GEMM: 16 independent [N, C] × [C, tiles] products.
  {
    const GemmTile t = {32, 64, 8, 128};
    KernelLaunch l;
    l.label = "wino-batched-gemm";
    l.num_blocks = 16 *
                   static_cast<std::int64_t>(ceil_div_d(n, t.m)) *
                   static_cast<std::int64_t>(ceil_div_d(tiles, t.n));
    l.block.threads = t.threads;
    l.block.shared_bytes = 2LL * (t.m + t.n) * t.k * 4;
    l.block.regs_per_thread = 32 + (t.m * t.n) / t.threads;
    const double k_padded = ceil_div_d(c, t.k) * t.k;
    l.flops_per_block = 2.0 * t.m * t.n * k_padded;
    // The 16 transform-domain planes interleave in memory: panel reads are
    // strided across planes (~1.3× sector waste).
    const double total_panels = 1.3 * static_cast<double>(l.num_blocks) *
                                (t.m + t.n) * k_padded * 4.0;
    const double unique = 16.0 * (c * n + c * tiles) * 4.0;
    add_reread_traffic(device, total_panels, unique, &l);
    l.bytes_written = 16.0 * n * tiles * 4.0;
    l.sync_count = static_cast<std::int64_t>(ceil_div_d(k_padded, t.k)) * 2;
    l.dependent_stalls = 2;  // double-buffered panel pipeline: fill only
    l.ilp = 8.0;
    l.compute_efficiency = 0.85;
    seq.push_back(l);
  }

  // 4) Output transform: (n, tile) 4×4 -> 2×2.
  {
    KernelLaunch l;
    l.label = "wino-output-transform";
    const double items = n * tiles;
    l.block.threads = 256;
    l.num_blocks = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(ceil_div_d(items, 256.0)));
    l.block.regs_per_thread = 48;
    l.flops_per_block = 256.0 * 48.0;
    l.bytes_read = 16.0 * n * tiles * 4.0;
    l.bytes_written = static_cast<double>(shape.batch) * n *
                      static_cast<double>(shape.out_h() * shape.out_w()) * 4.0;
    l.ilp = 4.0;
    seq.push_back(l);
  }

  return simulate_sequence(device, seq);
}

LatencyBreakdown cudnn_fft_cost(const DeviceSpec& device,
                                const ConvShape& shape) {
  TDC_CHECK_MSG(conv_algo_supports(ConvAlgo::kFft, shape),
                "fft cost requires stride 1: " + shape.to_string());
  const double batch = static_cast<double>(shape.batch);
  const double c = static_cast<double>(shape.c);
  const double n = static_cast<double>(shape.n);
  const std::int64_t fh = next_pow2(shape.h + 2 * shape.pad_h);
  const std::int64_t fw = next_pow2(shape.w + 2 * shape.pad_w);
  const double plane = static_cast<double>(fh * fw);
  const double log_plane = std::log2(std::max(2.0, plane));
  const double fft_flops = 5.0 * plane * log_plane;  // classic 5·N·log2 N
  // Complex interleaved planes: 8 bytes/sample.
  const double plane_bytes = plane * 8.0;

  std::vector<KernelLaunch> seq;

  auto make_fft_kernel = [&](const char* label, double count,
                             double in_bytes_per_item) {
    KernelLaunch l;
    l.label = label;
    // cuFFT batches several small planes per block; 4 is representative for
    // the plane sizes CNN layers produce.
    const double planes_per_block = 4.0;
    l.num_blocks = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::ceil(count / planes_per_block)));
    l.block.threads = static_cast<int>(
        std::clamp<std::int64_t>(fw * 4, device.warp_size, 256));
    l.block.shared_bytes =
        std::min<std::int64_t>(device.shared_mem_per_block,
                               static_cast<std::int64_t>(plane_bytes * 4.0));
    l.block.regs_per_thread = 64;
    l.flops_per_block = fft_flops * planes_per_block;
    l.bytes_read = count * in_bytes_per_item;
    // The spectra are consumed by the next kernel in the sequence; when they
    // fit the L2 they never round-trip to DRAM.
    const double out_bytes = count * plane_bytes;
    if (out_bytes <= static_cast<double>(device.l2_capacity_bytes)) {
      l.bytes_l2 = out_bytes;
    } else {
      l.bytes_written = out_bytes;
    }
    l.ilp = 4.0;  // radix-4/8 butterflies expose moderate ILP
    l.compute_efficiency = 0.75;
    return l;
  };

  // 1) Forward FFT of the batch's C input channels.
  seq.push_back(make_fft_kernel("fft-forward-input", batch * c,
                                static_cast<double>(shape.h * shape.w) * 4.0));
  // 2) Forward FFT of all C·N filter planes (recomputed per call).
  seq.push_back(make_fft_kernel(
      "fft-forward-filter", c * n, static_cast<double>(shape.r * shape.s) * 4.0));
  // 3) Frequency-domain multiply-accumulate over C for each output channel.
  {
    KernelLaunch l;
    l.label = "fft-pointwise-mac";
    l.num_blocks = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(ceil_div_d(batch * n * plane, 256.0)));
    l.block.threads = 256;
    l.block.regs_per_thread = 40;
    l.flops_per_block = 256.0 * c * 8.0;  // complex MAC = 8 flops
    // Input-channel spectra are re-read once per output channel (L2 hits
    // when they fit); filter spectra stream once per image, straight out of
    // the previous kernel.
    add_reread_traffic(device, batch * n * c * plane_bytes,
                       batch * c * plane_bytes, &l);
    add_reread_traffic(device, batch * c * n * plane_bytes,
                       c * n * plane_bytes, &l);
    l.bytes_written = batch * n * plane_bytes;
    l.ilp = 4.0;
    seq.push_back(l);
  }
  // 4) Inverse FFT of the batch's N output channels.
  {
    KernelLaunch l =
        make_fft_kernel("fft-inverse-output", batch * n, plane_bytes);
    l.bytes_written = batch * n *
                      static_cast<double>(shape.out_h() * shape.out_w()) * 4.0;
    seq.push_back(l);
  }

  return simulate_sequence(device, seq);
}

LatencyBreakdown library_conv_cost(ConvAlgo algo, const DeviceSpec& device,
                                   const ConvShape& shape) {
  switch (algo) {
    case ConvAlgo::kIm2col:
    case ConvAlgo::kReference:
      return cudnn_implicit_gemm_cost(device, shape);
    case ConvAlgo::kWinograd:
      return cudnn_winograd_cost(device, shape);
    case ConvAlgo::kFft:
      return cudnn_fft_cost(device, shape);
    case ConvAlgo::kTdcCore:
      TDC_CHECK_MSG(false,
                    "the TDC core kernel is priced by tdc_core_cost, not the "
                    "library adapters");
      break;
    case ConvAlgo::kAuto:
      TDC_CHECK_MSG(false,
                    "resolve kAuto (exec/conv_plan.h) before pricing");
      break;
  }
  TDC_CHECK_MSG(false, "unknown algorithm");
}

LatencyBreakdown elementwise_cost(const DeviceSpec& device, double elems_in,
                                  double elems_out) {
  KernelLaunch l;
  l.label = "elementwise";
  const double items = std::max(1.0, elems_out);
  l.num_blocks =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(ceil_div_d(items, 256.0)));
  l.block.threads = 256;
  l.block.regs_per_thread = 24;
  l.flops_per_block = 256.0 * 4.0;
  l.bytes_read = elems_in * 4.0;
  l.bytes_written = elems_out * 4.0;
  l.ilp = 4.0;
  return simulate_latency(device, l);
}

LatencyBreakdown fully_connected_cost(const DeviceSpec& device,
                                      std::int64_t in_features,
                                      std::int64_t out_features) {
  KernelLaunch l;
  l.label = "fully-connected";
  l.num_blocks = std::max<std::int64_t>(1, ceil_div(out_features, 32));
  l.block.threads = 128;
  l.block.regs_per_thread = 32;
  l.flops_per_block = 2.0 * 32.0 * static_cast<double>(in_features);
  l.bytes_read =
      static_cast<double>(in_features) * static_cast<double>(out_features) * 4.0 +
      static_cast<double>(in_features) * 4.0;
  l.bytes_written = static_cast<double>(out_features) * 4.0;
  l.ilp = 4.0;
  return simulate_latency(device, l);
}

}  // namespace tdc
