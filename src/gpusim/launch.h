// Kernel launch descriptor and latency breakdown.
//
// Every convolution scheme in the repository (the TDC kernel, the TVM-style
// scheme, and the cuDNN-library stand-ins) describes each GPU kernel it would
// launch as a KernelLaunch; gpusim::simulate_latency turns that description
// into a latency. This is the "measured" latency of the reproduction — the
// richer counterpart of the paper's simple analytical model in Section 5.3
// (which is implemented separately in src/core/tdc_model.* and is used only
// for tiling *selection*, exactly as in the paper).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/device.h"
#include "gpusim/occupancy.h"

namespace tdc {

struct KernelLaunch {
  std::string label;
  std::int64_t num_blocks = 1;
  BlockResources block;

  /// Useful + redundant FLOPs actually executed per block (2 × MACs).
  double flops_per_block = 0.0;
  /// Global-memory read volume for the whole grid, bytes (after coalescing
  /// inflation — use coalescing_waste_factor for strided patterns).
  double bytes_read = 0.0;
  /// Read traffic expected to be served by the L2 (re-reads of a working
  /// set that fits the cache — see add_reread_traffic).
  double bytes_l2 = 0.0;
  /// Global-memory write volume for the whole grid, bytes (the unique
  /// output footprint that ultimately reaches DRAM).
  double bytes_written = 0.0;
  /// Atomic read-modify-write traffic, bytes. Served by the L2 (where GPU
  /// atomics resolve), with the device's atomic penalty applied — e.g. the
  /// per-C-partition commits of the TDC kernel.
  double atomic_bytes = 0.0;
  /// __syncthreads barriers on one block's critical path.
  std::int64_t sync_count = 0;
  /// Serialized cooperative-load waits on the block critical path: phases
  /// where the whole block sits behind a barrier until a global load lands
  /// (Listing 1 pays one per input channel; double-buffered kernels only
  /// pay the pipeline fill).
  std::int64_t dependent_stalls = 1;
  /// Independent FMA chains per thread (register-tile accumulators); feeds
  /// the latency-hiding term of the compute model.
  double ilp = 4.0;
  /// Issue efficiency of the inner loop (predication, address math), (0, 1].
  double compute_efficiency = 1.0;
};

struct LatencyBreakdown {
  double total_s = 0.0;    ///< launch + max(compute, memory)
  double compute_s = 0.0;  ///< compute path incl. exposed barriers
  double memory_s = 0.0;   ///< DRAM path
  double launch_s = 0.0;   ///< fixed launch overhead
  double waves = 0.0;      ///< fractional wave count
  OccupancyResult occ;
};

/// Latency of a single kernel launch under the rich execution model.
/// Throws if the block does not fit the device.
LatencyBreakdown simulate_latency(const DeviceSpec& device,
                                  const KernelLaunch& launch);

/// Sum of per-kernel latencies for a multi-kernel algorithm (sequential
/// stream semantics, one launch overhead each).
LatencyBreakdown simulate_sequence(const DeviceSpec& device,
                                   const std::vector<KernelLaunch>& launches);

/// Bandwidth-waste multiplier (>= 1) for contiguous segments of
/// `segment_bytes` fetched through fixed-size DRAM sectors.
double coalescing_waste_factor(double segment_bytes, double sector_bytes = 32.0);

/// Account for `total_bytes` of reads over a working set of
/// `working_set_bytes`: the first pass over the working set comes from DRAM;
/// the re-read excess is served by the L2 when the working set fits there,
/// and by DRAM otherwise.
void add_reread_traffic(const DeviceSpec& device, double total_bytes,
                        double working_set_bytes, KernelLaunch* launch);

}  // namespace tdc
