#include "gpusim/device.h"

#include "common/check.h"

namespace tdc {

DeviceSpec make_a100() {
  DeviceSpec d;
  d.name = "A100";
  d.sms = 108;
  d.max_threads_per_sm = 2048;
  d.max_threads_per_block = 1024;
  d.max_blocks_per_sm = 32;
  d.shared_mem_per_sm = 164 * 1024;
  d.shared_mem_per_block = 163 * 1024;
  d.regs_per_sm = 65536;
  d.max_regs_per_thread = 255;
  d.peak_flops = 19.5e12;       // FP32 (non-tensor-core), GA100 datasheet
  d.mem_bandwidth = 1935e9;     // HBM2e, 80 GB SXM
  d.l2_bandwidth = 4500e9;      // measured GA100 L2 read bandwidth class
  d.l2_capacity_bytes = 40LL * 1024 * 1024;
  d.launch_overhead_s = 3.5e-6;
  d.saturation_streams = 32.0;
  d.warps_for_issue = 2.0;
  d.warps_to_saturate_bw = 8.0;
  d.sync_latency_s = 2.0e-8;
  d.atomic_penalty = 2.0;
  d.model_top_fraction = 0.05;  // paper §5.5: top 5 % on A100
  return d;
}

DeviceSpec make_rtx2080ti() {
  DeviceSpec d;
  d.name = "2080Ti";
  d.sms = 68;
  d.max_threads_per_sm = 1024;  // Turing resident-thread limit
  d.max_threads_per_block = 1024;
  d.max_blocks_per_sm = 16;
  d.shared_mem_per_sm = 64 * 1024;
  d.shared_mem_per_block = 64 * 1024;
  d.regs_per_sm = 65536;
  d.max_regs_per_thread = 255;
  d.peak_flops = 13.45e12;      // FP32, TU102 datasheet
  d.mem_bandwidth = 616e9;      // GDDR6
  d.l2_bandwidth = 1800e9;      // TU102 L2 bandwidth class
  d.l2_capacity_bytes = 5632LL * 1024;  // 5.5 MB
  d.launch_overhead_s = 4.5e-6;
  d.saturation_streams = 16.0;
  d.warps_for_issue = 2.0;
  // GDDR6 latency is lower than HBM2e relative to its bandwidth: a single
  // warp covers a larger share of the per-SM bandwidth budget.
  d.warps_to_saturate_bw = 4.0;
  d.sync_latency_s = 3.0e-8;
  d.load_stall_s = 3.0e-7;
  d.atomic_penalty = 2.5;
  d.model_top_fraction = 0.15;  // paper §5.5: top 15 % on 2080Ti
  return d;
}

DeviceSpec device_by_name(const std::string& name) {
  if (name == "a100" || name == "A100") {
    return make_a100();
  }
  if (name == "2080ti" || name == "2080Ti" || name == "rtx2080ti") {
    return make_rtx2080ti();
  }
  TDC_CHECK_MSG(false, "unknown device: " + name);
}

}  // namespace tdc
