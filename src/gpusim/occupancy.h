// CUDA occupancy calculator.
//
// Mirrors what `cudaOccupancyMaxActiveBlocksPerMultiprocessor` / the NVCC
// occupancy spreadsheet compute: resident blocks per SM are limited by the
// thread, shared-memory, register, and block-count budgets; occupancy is the
// resulting fraction of resident warps. The paper's wave equation (Eq. 14)
// consumes exactly this quantity ("we can obtain it by querying via the NVCC
// compiler").
#pragma once

#include <cstdint>

#include "gpusim/device.h"

namespace tdc {

/// Per-block resource footprint of a kernel launch.
struct BlockResources {
  int threads = 1;
  std::int64_t shared_bytes = 0;
  int regs_per_thread = 32;
};

struct OccupancyResult {
  bool launchable = false;     ///< block fits the device at all
  int blocks_per_sm = 0;       ///< resident blocks per SM
  double occupancy = 0.0;      ///< resident warps / max warps per SM
  const char* limiter = "";    ///< which budget binds ("threads", "smem", ...)
};

/// Occupancy of a kernel with the given per-block footprint.
OccupancyResult compute_occupancy(const DeviceSpec& device,
                                  const BlockResources& block);

/// Threads rounded up to a whole number of warps.
int round_up_to_warp(const DeviceSpec& device, int threads);

}  // namespace tdc
