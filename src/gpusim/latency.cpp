#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "gpusim/launch.h"

namespace tdc {

namespace {

// Wall time of one wave of `blocks_in_wave` resident blocks.
//
// Each active SM timeshares `bpsm` blocks. Per-SM FP32 throughput is scaled
// by a latency-hiding fraction: a warp issues at most one FMA
// warp-instruction per cycle (`warps_for_issue` needed to fill the lanes),
// and the pipeline needs `saturation_streams` independent instruction
// streams (resident warps × per-thread ILP) in flight to cover FMA latency.
// Exposed __syncthreads barriers add to the critical path; with several
// resident blocks per SM, barrier stalls in one block are hidden by issuing
// from the others.
double wave_time(const DeviceSpec& d, const KernelLaunch& l, int blocks_per_sm,
                 std::int64_t blocks_in_wave) {
  const std::int64_t sms_used =
      std::min<std::int64_t>(d.sms, blocks_in_wave);
  const std::int64_t bpsm =
      std::min<std::int64_t>(blocks_per_sm,
                             (blocks_in_wave + sms_used - 1) / sms_used);
  const int warp_threads = round_up_to_warp(d, l.block.threads);
  const double warps_per_block =
      static_cast<double>(warp_threads) / d.warp_size;
  const double active_warps = static_cast<double>(bpsm) * warps_per_block;

  double frac = std::min(1.0, active_warps / d.warps_for_issue);
  frac = std::min(frac, active_warps * std::max(1.0, l.ilp) /
                            d.saturation_streams);
  // Partial warps waste lanes: a block of 4 threads pays whole-warp issue
  // slots for 4 lanes of useful work.
  frac *= static_cast<double>(l.block.threads) / warp_threads;
  frac *= std::clamp(l.compute_efficiency, 1e-3, 1.0);

  const double per_sm_rate = d.peak_flops_per_sm() * frac;
  const double compute =
      static_cast<double>(bpsm) * l.flops_per_block / per_sm_rate;
  // Barriers and dependent-load phases stall the block; co-resident blocks
  // on the same SM hide each other's stalls.
  const double barriers = static_cast<double>(l.sync_count) *
                          d.sync_latency_s / static_cast<double>(bpsm);
  // Load-stall hiding saturates: co-resident copies of the same kernel
  // stall in lockstep after each barrier and queue at the same L2/DRAM
  // path, so a handful of neighbours is all the overlap there is.
  const double stalls =
      static_cast<double>(l.dependent_stalls) * d.load_stall_s /
      std::min<double>(static_cast<double>(bpsm), 4.0);
  return compute + barriers + stalls;
}

}  // namespace

double coalescing_waste_factor(double segment_bytes, double sector_bytes) {
  TDC_CHECK(segment_bytes > 0.0 && sector_bytes > 0.0);
  const double sectors = std::ceil(segment_bytes / sector_bytes);
  return sectors * sector_bytes / segment_bytes;
}

void add_reread_traffic(const DeviceSpec& device, double total_bytes,
                        double working_set_bytes, KernelLaunch* launch) {
  TDC_CHECK(launch != nullptr);
  TDC_CHECK(total_bytes >= 0.0 && working_set_bytes >= 0.0);
  const double first_pass = std::min(total_bytes, working_set_bytes);
  const double reread = total_bytes - first_pass;
  launch->bytes_read += first_pass;
  if (working_set_bytes <= static_cast<double>(device.l2_capacity_bytes)) {
    launch->bytes_l2 += reread;
  } else {
    launch->bytes_read += reread;
  }
}

LatencyBreakdown simulate_latency(const DeviceSpec& device,
                                  const KernelLaunch& launch) {
  TDC_CHECK_MSG(launch.num_blocks >= 1, "empty grid: " + launch.label);
  const OccupancyResult occ = compute_occupancy(device, launch.block);
  TDC_CHECK_MSG(occ.launchable,
                "kernel does not fit device: " + launch.label);

  LatencyBreakdown out;
  out.occ = occ;
  out.launch_s = device.launch_overhead_s;

  const std::int64_t blocks_per_wave =
      static_cast<std::int64_t>(occ.blocks_per_sm) * device.sms;
  const std::int64_t full_waves = launch.num_blocks / blocks_per_wave;
  const std::int64_t remainder = launch.num_blocks % blocks_per_wave;
  out.waves = static_cast<double>(launch.num_blocks) /
              static_cast<double>(blocks_per_wave);

  double compute = static_cast<double>(full_waves) *
                   wave_time(device, launch, occ.blocks_per_sm, blocks_per_wave);
  if (remainder > 0) {
    compute += wave_time(device, launch, occ.blocks_per_sm, remainder);
  }
  out.compute_s = compute;

  // Memory path: DRAM traffic at a bandwidth derated by the achievable
  // memory-level parallelism — only the SMs that actually hold blocks issue
  // loads, and each needs several resident warps to cover DRAM latency.
  const double warps_per_block =
      static_cast<double>(round_up_to_warp(device, launch.block.threads)) /
      device.warp_size;
  const std::int64_t sms_used =
      std::min<std::int64_t>(device.sms, launch.num_blocks);
  const std::int64_t bpsm_actual = std::min<std::int64_t>(
      occ.blocks_per_sm, (launch.num_blocks + sms_used - 1) / sms_used);
  const double resident_warps_per_sm =
      static_cast<double>(bpsm_actual) * warps_per_block;
  // Aggregate memory-level parallelism: each resident warp sustains
  // mem_bandwidth / (sms × warps_to_saturate_bw) on its own; the device
  // ceiling caps the sum.
  const double bw_frac = std::min(
      1.0, static_cast<double>(sms_used) * resident_warps_per_sm /
               (static_cast<double>(device.sms) * device.warps_to_saturate_bw));
  const double eff_bw = device.mem_bandwidth * std::max(bw_frac, 1e-4);
  const double dram_s = (launch.bytes_read + launch.bytes_written) / eff_bw;
  // L2-resident traffic: cached re-reads plus atomics (which resolve in the
  // L2 slices and pay the read-modify-write penalty there).
  const double l2_bw =
      (device.l2_bandwidth > 0.0 ? device.l2_bandwidth
                                 : 2.0 * device.mem_bandwidth) *
      std::max(bw_frac, 1e-4);
  const double l2_s =
      (launch.bytes_l2 + launch.atomic_bytes * device.atomic_penalty) / l2_bw;
  out.memory_s = dram_s + l2_s;

  out.total_s = out.launch_s + std::max(out.compute_s, out.memory_s);
  return out;
}

LatencyBreakdown simulate_sequence(const DeviceSpec& device,
                                   const std::vector<KernelLaunch>& launches) {
  LatencyBreakdown sum;
  for (const auto& l : launches) {
    const LatencyBreakdown b = simulate_latency(device, l);
    sum.total_s += b.total_s;
    sum.compute_s += b.compute_s;
    sum.memory_s += b.memory_s;
    sum.launch_s += b.launch_s;
    sum.waves += b.waves;
  }
  return sum;
}

}  // namespace tdc
