// End-to-end co-design walkthrough on ResNet-18 (paper Section 6).
//
//   $ ./build/examples/codesign_resnet18 [budget] [device]
//
// Runs the full hardware-aware pipeline the paper's Figure 1 sketches:
// build the per-layer latency tables, select ranks under a FLOPs budget
// with the θ rule, and price the compressed network end-to-end on every
// backend. Prints the per-layer decisions — the part of TDC a model
// engineer interacts with.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/plan_export.h"
#include "nn/model_cost.h"
#include "nn/models.h"

int main(int argc, char** argv) {
  using namespace tdc;
  const double budget = argc > 1 ? std::atof(argv[1]) : 0.65;
  const std::string device_name = argc > 2 ? argv[2] : "a100";
  const DeviceSpec device = device_by_name(device_name);
  const ModelSpec model = make_resnet18();

  std::printf("== Hardware-aware co-design: %s on %s, budget %.0f%% ==\n\n",
              model.name.c_str(), device.name.c_str(), budget * 100.0);

  CodesignOptions opts;
  opts.budget = budget;
  const CodesignResult result = compress_model(device, model, opts);

  std::printf("%-52s %12s %18s\n", "layer", "orig (us)", "decision");
  for (const auto& dec : result.layers) {
    if (dec.shape.r == 1 && dec.shape.s == 1 && !dec.decomposed) {
      continue;  // keep the listing readable: skip undecomposed pointwise
    }
    if (dec.decomposed) {
      std::printf("%-52s %12.2f -> (D1=%lld, D2=%lld) %.2f us, tiling %s\n",
                  dec.shape.to_string().c_str(),
                  dec.original_latency_s * 1e6,
                  static_cast<long long>(dec.ranks.d1),
                  static_cast<long long>(dec.ranks.d2),
                  dec.chosen_latency_s * 1e6, dec.tiling.to_string().c_str());
    } else {
      std::printf("%-52s %12.2f    kept (theta rule)\n",
                  dec.shape.to_string().c_str(),
                  dec.original_latency_s * 1e6);
    }
  }

  std::printf("\nModel conv FLOPs: %.2f G -> %.2f G (%.1f%% reduction)\n",
              result.total_original_flops / 1e9,
              result.total_chosen_flops / 1e9,
              result.achieved_flops_reduction() * 100.0);

  std::printf("\nEnd-to-end simulated inference latency:\n");
  const double original = model_latency_original(device, model);
  std::printf("  original (cuDNN)        : %8.3f ms\n", original * 1e3);
  for (const CoreBackend backend :
       {CoreBackend::kCudnn, CoreBackend::kTvm, CoreBackend::kTdcModel,
        CoreBackend::kTdcOracle}) {
    const double latency =
        model_latency_compressed(device, model, result, backend);
    std::printf("  TK-compressed %-10s: %8.3f ms  (%.2fx vs original)\n",
                core_backend_name(backend), latency * 1e3,
                original / latency);
  }

  // Ship the deployment artifact: plan CSV + one CUDA kernel per core shape.
  const std::string plan_dir = "tdc_plan_" + model.name;
  const int files = export_plan(plan_dir, device, result);
  std::printf("\nDeployment plan written to ./%s (%d files: plan.csv, "
              "SUMMARY.txt, generated .cu kernels)\n",
              plan_dir.c_str(), files);
  return 0;
}
