// Quickstart: decompose one convolution layer, check numerical equivalence,
// and compare simulated GPU latencies of every execution scheme.
//
//   $ ./build/examples/quickstart
//
// Walks through the core TDC workflow on a single layer:
//   1. Tucker-2 decomposition of the kernel at chosen ranks (Eq. 1)
//   2. the three-stage pipeline (1×1 → core → 1×1, Eqs. 2–4) vs the
//      original convolution, numerically
//   3. tiling selection for the TDC core kernel (analytical model vs
//      exhaustive oracle, Section 5.5)
//   4. simulated latencies of cuDNN / TVM-scheme / TDC on the core
#include <cstdio>

#include "conv/conv.h"
#include "conv/tucker_conv.h"
#include "core/tdc_kernel.h"
#include "core/tdc_model.h"
#include "core/tvm_scheme.h"
#include "gpusim/library_cost.h"
#include "tensor/layout.h"
#include "tucker/flops.h"
#include "tucker/tucker.h"

int main() {
  using namespace tdc;

  // A mid-network layer: 64 -> 64 channels, 28x28 image, 3x3 filter.
  const ConvShape layer = ConvShape::same(64, 64, 28, 3);
  const TuckerRanks ranks{32, 32};

  std::printf("== TDC quickstart ==\n\n");
  std::printf("Layer: %s\n", layer.to_string().c_str());
  std::printf("Tucker ranks: (D1=%lld, D2=%lld)\n",
              static_cast<long long>(ranks.d1),
              static_cast<long long>(ranks.d2));
  std::printf("Parameter reduction (Eq. 5): %.2fx\n",
              params_reduction_ratio(layer, ranks));
  std::printf("FLOPs reduction (Eq. 6):     %.2fx\n\n",
              flops_reduction_ratio(layer, ranks));

  // --- 1. Decompose a random kernel and measure the approximation. ---
  Rng rng(42);
  const Tensor x = Tensor::random_uniform({layer.c, layer.h, layer.w}, rng);
  const Tensor kernel =
      Tensor::random_uniform({layer.c, layer.n, layer.r, layer.s}, rng);
  const TuckerFactors factors = tucker_decompose(kernel, ranks);
  std::printf("Kernel approximation error at (32,32): %.4f (random kernels "
              "are full rank; trained ADMM kernels project near-losslessly)\n",
              tucker_projection_error(kernel, ranks));

  // --- 2. Pipeline vs. direct convolution with the reconstructed kernel. ---
  const Tensor reference =
      conv2d_reference(x, tucker_reconstruct(factors), layer);
  const Tensor pipeline = tucker_conv(x, factors, layer);
  std::printf("Pipeline (Eqs. 2-4) vs reconstructed-kernel conv: rel. error "
              "%.2e  -> mathematically equivalent\n\n",
              Tensor::rel_error(pipeline, reference));

  // --- 3. Tiling selection for the core kernel. ---
  const DeviceSpec device = make_a100();
  const ConvShape core = core_conv_shape(layer, ranks);
  const TdcTiling model_tiling = select_tiling_model(device, core);
  const TdcTiling oracle_tiling = select_tiling_oracle(device, core);
  std::printf("Core convolution: %s\n", core.to_string().c_str());
  std::printf("Analytical-model tiling: %s\n", model_tiling.to_string().c_str());
  std::printf("Oracle tiling:           %s\n\n",
              oracle_tiling.to_string().c_str());

  // Run the actual TDC kernel scheme on the CPU and verify it.
  const Tensor z1 = tucker_conv_stage1(x, factors);
  const Tensor core_out =
      tdc_core_conv(z1, cnrs_to_crsn(factors.core), core, oracle_tiling);
  const Tensor core_ref = conv2d_reference(z1, factors.core, core);
  std::printf("TDC kernel functional check: rel. error %.2e vs reference\n\n",
              Tensor::rel_error(core_out, core_ref));

  // --- 4. Simulated latencies on the core shape. ---
  std::printf("Simulated core latencies on %s:\n", device.name.c_str());
  std::printf("  cuDNN implicit GEMM : %8.2f us\n",
              cudnn_implicit_gemm_cost(device, core).total_s * 1e6);
  std::printf("  cuDNN Winograd      : %8.2f us\n",
              cudnn_winograd_cost(device, core).total_s * 1e6);
  std::printf("  cuDNN FFT           : %8.2f us\n",
              cudnn_fft_cost(device, core).total_s * 1e6);
  std::printf("  TVM scheme (tuned)  : %8.2f us\n",
              tvm_best_cost(device, core).total_s * 1e6);
  std::printf("  TDC (model tiling)  : %8.2f us\n",
              tdc_core_cost(device, core, model_tiling).total_s * 1e6);
  std::printf("  TDC (oracle tiling) : %8.2f us\n",
              tdc_core_cost(device, core, oracle_tiling).total_s * 1e6);
  return 0;
}
