// CUDA code generation for a deployable TDC core kernel (Section 5 + the
// artifact's code-generator role).
//
//   $ ./build/examples/generate_kernel [C] [N] [HW] [device]
//
// Picks the tiling for the requested core-convolution shape with the
// analytical model, emits the specialized .cu source to stdout, and prints
// the predicted launch geometry. Redirect to a file and compile with nvcc
// on a CUDA machine:
//   $ ./build/examples/generate_kernel 32 32 28 a100 > tdc_core_32x32.cu
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/codegen.h"
#include "core/tdc_model.h"

int main(int argc, char** argv) {
  using namespace tdc;
  const std::int64_t c = argc > 1 ? std::atoll(argv[1]) : 32;
  const std::int64_t n = argc > 2 ? std::atoll(argv[2]) : 32;
  const std::int64_t hw = argc > 3 ? std::atoll(argv[3]) : 28;
  const std::string device_name = argc > 4 ? argv[4] : "a100";

  const DeviceSpec device = device_by_name(device_name);
  const ConvShape shape = ConvShape::same(c, n, hw, 3);
  const TdcTiling tiling = select_tiling_model(device, shape);

  std::fputs(generate_cuda_source(device, shape, tiling).c_str(), stdout);
  return 0;
}
