// Tiling-space exploration for one core convolution (paper Sections 5.3-5.5).
//
//   $ ./build/examples/kernel_tuning [C] [N] [HW] [device]
//
// Shows what the analytical performance model sees: for a sample of the
// tiling space, the closed-form compute latency (Eqs. 14-15), the modeled
// memory volume (Eqs. 16-19), and the rich-simulator latency the oracle
// optimizes. Then prints both selectors' picks. This is the "auto-tuning
// script" face of the framework.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/tdc_model.h"

int main(int argc, char** argv) {
  using namespace tdc;
  const std::int64_t c = argc > 1 ? std::atoll(argv[1]) : 64;
  const std::int64_t n = argc > 2 ? std::atoll(argv[2]) : 32;
  const std::int64_t hw = argc > 3 ? std::atoll(argv[3]) : 28;
  const std::string device_name = argc > 4 ? argv[4] : "a100";

  const DeviceSpec device = device_by_name(device_name);
  const ConvShape shape = ConvShape::same(c, n, hw, 3);

  std::printf("== Tiling exploration: %s on %s ==\n\n",
              shape.to_string().c_str(), device.name.c_str());

  std::vector<TdcTiling> tilings = enumerate_tilings(device, shape);
  std::printf("Feasible tilings: %zu\n\n", tilings.size());

  // Rank all by simulated latency; print the 10 best and 3 worst.
  std::sort(tilings.begin(), tilings.end(),
            [&](const TdcTiling& a, const TdcTiling& b) {
              return tdc_core_cost(device, shape, a).total_s <
                     tdc_core_cost(device, shape, b).total_s;
            });
  std::printf("%-22s %14s %16s %14s\n", "tiling", "simulated(us)",
              "paper comp(us)", "mem volume(K)");
  auto print_row = [&](const TdcTiling& t) {
    std::printf("%-22s %14.2f %16.2f %14.0f\n", t.to_string().c_str(),
                tdc_core_cost(device, shape, t).total_s * 1e6,
                paper_comp_latency(device, shape, t) * 1e6,
                paper_mem_volume(shape, t) / 1e3);
  };
  for (std::size_t i = 0; i < std::min<std::size_t>(10, tilings.size()); ++i) {
    print_row(tilings[i]);
  }
  std::printf("...\n");
  for (std::size_t i = tilings.size() - std::min<std::size_t>(3, tilings.size());
       i < tilings.size(); ++i) {
    print_row(tilings[i]);
  }

  const TdcTiling model_pick = select_tiling_model(device, shape);
  const TdcTiling oracle_pick = select_tiling_oracle(device, shape);
  std::printf("\nAnalytical model pick : %s -> %.2f us\n",
              model_pick.to_string().c_str(),
              tdc_core_cost(device, shape, model_pick).total_s * 1e6);
  std::printf("Oracle pick           : %s -> %.2f us\n",
              oracle_pick.to_string().c_str(),
              tdc_core_cost(device, shape, oracle_pick).total_s * 1e6);
  std::printf("\nThe model avoids the exhaustive search at a modest cost — "
              "the paper's Section 5.5 trade-off.\n");
  return 0;
}
