// ADMM-based Tucker compression of a small CNN (paper Section 4.1).
//
//   $ ./build/examples/admm_compression
//
// Trains a small residual CNN on the synthetic classification task, imposes
// low-Tucker-rank structure with the ADMM loop (K-update / K̂-update /
// M-update), then performs the actual model surgery: every spatial
// convolution is replaced by its 1×1 → core → 1×1 pipeline, and the
// compressed network is fine-tuned. Prints the per-epoch ADMM residual so
// the convergence of the rank constraint is visible.
#include <cstdio>

#include "train/admm.h"
#include "train/trainer.h"
#include "train/zoo.h"
#include "tucker/flops.h"

int main() {
  using namespace tdc;

  SyntheticSpec dspec;
  dspec.classes = 8;
  dspec.channels = 3;
  dspec.hw = 16;
  dspec.train_size = 768;
  dspec.test_size = 384;
  dspec.noise = 0.9;
  const SyntheticData data = make_synthetic_data(dspec);

  Rng rng(7);
  MiniResNetSpec mspec;
  mspec.input_hw = 16;
  mspec.classes = dspec.classes;
  mspec.stage_widths = {8, 16, 32};
  TrainableModel model = make_mini_resnet(mspec, rng);

  std::printf("== ADMM Tucker compression ==\n\n");
  std::printf("Model: %zu spatial convolutions, %.2f MFLOPs/sample\n",
              model.spatial_convs.size(), model_forward_flops(model) / 1e6);

  // Phase 1: plain training.
  TrainOptions warm;
  warm.epochs = 3;
  warm.batch_size = 32;
  warm.sgd.lr = 0.08;
  warm.verbose = true;
  std::printf("\n[1/3] warm-up training\n");
  train_model(model.net.get(), data, warm);

  // Phase 2: ADMM-regularized training toward per-layer ranks (C/2, N/2).
  std::vector<AdmmTarget> targets;
  std::vector<TuckerRanks> ranks;
  for (const auto& slot : model.spatial_convs) {
    const ConvShape& g = slot.conv->geometry();
    const TuckerRanks r{std::max<std::int64_t>(2, g.c / 2),
                        std::max<std::int64_t>(2, g.n / 2)};
    targets.push_back({slot.conv, r});
    ranks.push_back(r);
  }
  AdmmState admm(targets, {/*rho=*/0.6});
  TrainOptions reg;
  reg.epochs = 5;
  reg.batch_size = 32;
  reg.sgd.lr = 0.04;
  reg.verbose = true;
  std::printf("\n[2/3] ADMM-regularized training (watch the residual fall)\n");
  train_model(model.net.get(), data, reg, &admm);

  // Phase 3: surgery + fine-tune.
  const double flops_before = model_forward_flops(model);
  const double acc_before = evaluate_accuracy(model.net.get(), data.test);
  tuckerize_model(&model, ranks);
  const double flops_after = model_forward_flops(model);
  const double acc_at_truncation = evaluate_accuracy(model.net.get(), data.test);

  TrainOptions tune;
  tune.epochs = 2;
  tune.batch_size = 32;
  tune.sgd.lr = 0.02;
  tune.verbose = true;
  std::printf("\n[3/3] fine-tuning the Tucker-format model\n");
  train_model(model.net.get(), data, tune);
  const double acc_final = evaluate_accuracy(model.net.get(), data.test);

  std::printf("\nResults:\n");
  std::printf("  FLOPs/sample       : %.2f M -> %.2f M (%.1f%% reduction)\n",
              flops_before / 1e6, flops_after / 1e6,
              (1.0 - flops_after / flops_before) * 100.0);
  std::printf("  accuracy before surgery  : %.2f%%\n", acc_before * 100.0);
  std::printf("  accuracy at truncation   : %.2f%% (ADMM made the kernels "
              "near-low-rank)\n",
              acc_at_truncation * 100.0);
  std::printf("  accuracy after fine-tune : %.2f%%\n", acc_final * 100.0);
  return 0;
}
