// End-to-end serving through the plan/execute API.
//
//   $ ./build/example_compiled_inference [budget] [batch]
//
// The deployment flow the plan layer was built for:
//   1. co-design pass over the ResNet-18 residual trunk (Algorithm 1) —
//      decides which layers to decompose and at which ranks;
//   2. CompiledModel::compile turns the decision list + weights into a
//      chain of ConvPlans (fused Tucker pipelines for decomposed layers,
//      auto-selected dense plans for kept ones);
//   3. a steady-state serving loop replays the compiled chain over a
//      stream of requests with one preallocated workspace — no per-request
//      allocation, reshaping, or weight packing.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/rng.h"
#include "exec/compiled_model.h"
#include "gpusim/device.h"

int main(int argc, char** argv) {
  using namespace tdc;
  const double budget = argc > 1 ? std::atof(argv[1]) : 0.65;
  const std::int64_t batch = argc > 2 ? std::atoll(argv[2]) : 8;
  const DeviceSpec device = make_a100();

  // The chainable ResNet-18 residual trunk (post-stem): each layer's
  // [N, OH, OW] is the next layer's [C, H, W].
  const std::vector<ConvShape> trunk = {
      ConvShape::same(64, 64, 56, 3),      // conv2_x
      ConvShape::same(64, 64, 56, 3),      // conv2_x
      ConvShape::same(64, 128, 56, 3, 2),  // conv3_1 (stride 2)
      ConvShape::same(128, 128, 28, 3),    // conv3_x
      ConvShape::same(128, 256, 28, 3, 2), // conv4_1 (stride 2)
      ConvShape::same(256, 256, 14, 3),    // conv4_x
      ConvShape::same(256, 512, 14, 3, 2), // conv5_1 (stride 2)
      ConvShape::same(512, 512, 7, 3),     // conv5_x
  };

  std::printf("== Compiled inference: ResNet-18 trunk on %s, budget %.0f%% ==\n\n",
              device.name.c_str(), budget * 100.0);

  // 1. Co-design: which layers decompose, at which ranks.
  CodesignOptions opts;
  opts.budget = budget;
  const CodesignResult codesign = run_codesign(device, trunk, opts);

  // 2. Compile the decision list against the layer weights.
  Rng rng(20230225);
  std::vector<Tensor> kernels;
  for (const ConvShape& s : trunk) {
    kernels.push_back(Tensor::random_uniform({s.c, s.n, s.r, s.s}, rng));
  }
  const CompiledModel model =
      CompiledModel::compile(device, codesign.layers, kernels);

  std::printf("%-28s %-12s %-18s %14s\n", "layer", "plan", "decision",
              "workspace");
  for (std::int64_t i = 0; i < model.num_layers(); ++i) {
    const LayerDecision& dec = codesign.layers[static_cast<std::size_t>(i)];
    char decision[64];
    if (dec.decomposed) {
      std::snprintf(decision, sizeof(decision), "tucker (%lld, %lld)",
                    static_cast<long long>(dec.ranks.d1),
                    static_cast<long long>(dec.ranks.d2));
    } else {
      std::snprintf(decision, sizeof(decision), "kept dense");
    }
    std::printf("%-28s %-12s %-18s %11.1f KiB\n",
                dec.shape.to_string().c_str(), model.plan(i).algo_name(),
                decision, model.plan(i).workspace_bytes() / 1024.0);
  }
  std::printf("\nachieved FLOPs reduction: %.1f%%\n",
              codesign.achieved_flops_reduction() * 100.0);

  // 3. Steady-state serving loop: one workspace, zero allocation per batch.
  const ConvShape& in = model.input_shape();
  const ConvShape& out = model.output_shape();
  const Tensor x = Tensor::random_uniform({batch, in.c, in.h, in.w}, rng);
  Tensor y({batch, out.n, out.out_h(), out.out_w()});
  std::vector<float> workspace(static_cast<std::size_t>(
      model.batched_workspace_bytes(batch) / sizeof(float)));
  std::printf("serving workspace: %.1f MiB for batch %lld\n",
              static_cast<double>(model.batched_workspace_bytes(batch)) /
                  (1024.0 * 1024.0),
              static_cast<long long>(batch));

  model.run_batched(x, &y, workspace);  // warm-up
  const int reps = 5;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) {
    model.run_batched(x, &y, workspace);
  }
  const double s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count() /
      reps;
  std::printf("batched run: %.2f ms/batch, %.1f images/s\n", s * 1e3,
              static_cast<double>(batch) / s);
  return 0;
}
