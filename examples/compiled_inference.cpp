// End-to-end serving through the graph-level plan API.
//
//   $ ./build/example_compiled_inference [budget] [batch]
//
// The deployment flow the exec layer was built for:
//   1. co-design pass over ResNet-18's decomposable convolutions
//      (Algorithm 1) — decides which layers to decompose and at which ranks;
//   2. InferenceSession::compile turns the *whole* ModelSpec — 7×7 stem and
//      its maxpool, residual stages with downsample projections, BN/ReLU,
//      global pool, FC head — plus that decision list into a DAG of op
//      plans with a liveness-planned activation arena. Convolution plans go
//      through the process-wide PlanCache, so a recompile of the same model
//      (a second replica, a config reload) is nearly free;
//   3. a steady-state serving loop replays the session over a stream of
//      requests with one preallocated workspace — no per-request
//      allocation, reshaping, or weight packing.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/rng.h"
#include "exec/graph_plan.h"
#include "exec/microbench.h"
#include "exec/plan_cache.h"
#include "nn/models.h"

int main(int argc, char** argv) {
  using namespace tdc;
  using Clock = std::chrono::steady_clock;
  const double budget = argc > 1 ? std::atof(argv[1]) : 0.65;
  const std::int64_t batch = argc > 2 ? std::atoll(argv[2]) : 4;
  const DeviceSpec device = make_a100();
  const ModelSpec model = make_resnet18();

  std::printf("== Compiled inference: %s on %s, budget %.0f%% ==\n\n",
              model.name.c_str(), device.name.c_str(), budget * 100.0);

  // 1. Co-design over the decomposable convolutions — taken at full width:
  //    the tridiagonal eigensolver behind tucker_decompose factorizes even
  //    the 512-channel conv5 stages in well under a second, so the compile
  //    below pays for every decomposition the codesign asked for.
  CodesignOptions opts;
  opts.budget = budget;
  const CodesignResult codesign =
      run_codesign(device, model.decomposable_conv_shapes(), opts);
  const std::vector<LayerDecision>& decisions = codesign.layers;

  // 2. Compile the full inventory against (here: synthetic) weights. The
  //    dense layers stay at kAuto: sessions resolve it with the host cost
  //    provider (exec/host_cost.h), which prices candidates for this CPU —
  //    the historical dense_algo = kIm2col pin is no longer needed (the
  //    option remains for explicit overrides).
  SessionOptions options;
  const auto weights = random_model_weights(model, 20230225);
  // Calibrate the host model before the timer: a once-per-process cost that
  // would otherwise be billed to the first compile.
  host_calibration();
  const auto t0 = Clock::now();
  const InferenceSession session =
      InferenceSession::compile(device, model, weights, decisions, options);
  const double cold_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  std::int64_t convs = 0;
  std::int64_t decomposed = 0;
  for (std::int64_t i = 0; i < session.num_ops(); ++i) {
    const auto* conv = dynamic_cast<const ConvPlan*>(&session.op(i));
    if (conv != nullptr) {
      ++convs;
      decomposed += conv->decomposed() ? 1 : 0;
    }
  }
  std::printf("session: %lld ops (%lld convs, %lld decomposed), arena %.1f "
              "MiB, workspace %.1f MiB\n",
              static_cast<long long>(session.num_ops()),
              static_cast<long long>(convs),
              static_cast<long long>(decomposed),
              session.arena_floats() * 4.0 / (1024.0 * 1024.0),
              session.workspace_bytes() / (1024.0 * 1024.0));

  // A second replica compiling the same model hits the plan cache.
  const auto t1 = Clock::now();
  const InferenceSession replica =
      InferenceSession::compile(device, model, weights, decisions, options);
  const double cached_s =
      std::chrono::duration<double>(Clock::now() - t1).count();
  const PlanCache::Stats stats = PlanCache::instance().stats();
  std::printf("compile: cold %.1f ms, cached %.1f ms (%.0fx; cache: %lld "
              "entries, %lld hits)\n\n",
              cold_s * 1e3, cached_s * 1e3, cold_s / cached_s,
              static_cast<long long>(stats.entries),
              static_cast<long long>(stats.hits));

  // 3. Steady-state serving loop through the cache-compiled replica — one
  //    workspace, zero allocation per batch, bit-identical to the cold
  //    session.
  Rng rng(42);
  const OpShape& in = replica.input_shape();
  const OpShape& out = replica.output_shape();
  const Tensor x = Tensor::random_uniform({batch, in.c, in.h, in.w}, rng);
  Tensor y({batch, out.c, out.h, out.w});
  std::vector<float> workspace(static_cast<std::size_t>(
      replica.batched_workspace_bytes(batch) / sizeof(float)));

  replica.run_batched(x, &y, workspace);  // warm-up
  const int reps = 3;
  const auto t2 = Clock::now();
  for (int i = 0; i < reps; ++i) {
    replica.run_batched(x, &y, workspace);
  }
  const double s =
      std::chrono::duration<double>(Clock::now() - t2).count() / reps;
  std::printf("batched run (replica session): %.2f ms/batch, %.1f images/s\n",
              s * 1e3, static_cast<double>(batch) / s);
  return 0;
}
